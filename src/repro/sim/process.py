"""Simulated processes and CPU resources.

The real system runs ResilientDB's multi-threaded, pipelined consensus stack
on every shim node.  We model the compute side of that stack with
:class:`CpuResource`: a node with ``cores`` cores can serve up to ``cores``
message-handling jobs in parallel; further jobs queue FIFO.  This is what
makes throughput saturate under client congestion (Figure 5) and improve
with more cores (Figure 6 ix/x), exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.errors import SimulationError
from repro.perf import PERF
from repro.sim.engine import Simulator


class CpuResource:
    """A multi-core FIFO processing resource attached to a simulated node.

    Jobs beyond the core count wait in an intrusive FIFO; when a running
    job completes, the next queued job's completion is scheduled directly
    through the kernel's fire-and-forget fast path.  Back-to-back
    completions on a busy core are the kernel's best coalescing customers:
    a saturated core's next completion is usually the globally next event,
    so it travels through the deferred slot without touching the heap at
    all (see ``repro.sim.engine``); ``PERF.cpu_jobs_coalesced`` counts the
    jobs that completed through this chained path.
    """

    def __init__(self, sim: Simulator, cores: int, name: str = "cpu") -> None:
        if cores <= 0:
            raise SimulationError("a CPU resource needs at least one core")
        self._sim = sim
        self._schedule_fast = sim.schedule_fast
        self._cores = cores
        self._name = name
        self._busy = 0
        self._pending: Deque[Tuple[float, Callable[[], Any]]] = deque()
        self._busy_time = 0.0
        self._jobs_done = 0
        self._speed_factor = 1.0

    @property
    def cores(self) -> int:
        return self._cores

    @property
    def busy_cores(self) -> int:
        return self._busy

    @property
    def queued_jobs(self) -> int:
        return len(self._pending)

    @property
    def busy_time(self) -> float:
        """Total core-seconds of work executed so far."""
        return self._busy_time

    @property
    def jobs_done(self) -> int:
        return self._jobs_done

    @property
    def speed_factor(self) -> float:
        return self._speed_factor

    def set_speed_factor(self, factor: float) -> None:
        """Stretch (>1) or restore (=1) service times of *future* submissions.

        Used by fault timelines to model a degraded node.  Applied at submit
        time only, so flipping the factor never reshuffles in-flight jobs.
        """
        if factor <= 0:
            raise SimulationError("speed factor must be positive")
        self._speed_factor = factor

    def utilisation(self, elapsed: float) -> float:
        """Average utilisation over ``elapsed`` seconds of virtual time."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / (elapsed * self._cores))

    def submit(self, service_time: float, on_done: Callable[..., Any], *args: Any) -> None:
        """Submit a job needing ``service_time`` core-seconds.

        ``on_done(*args)`` runs when the job finishes (possibly after
        queueing).  Passing arguments explicitly instead of closing over
        them saves a closure allocation per message on the dispatch hot
        paths.  Zero-cost jobs complete immediately without occupying a
        core.
        """
        if service_time < 0:
            raise SimulationError("service_time must be non-negative")
        if service_time == 0:
            on_done(*args)
            return
        if self._speed_factor != 1.0:
            service_time *= self._speed_factor
        if self._busy < self._cores:
            self._busy += 1
            self._busy_time += service_time
            # Job completions are never cancelled: take the kernel's fast path.
            self._schedule_fast(service_time, self._finish, on_done, args)
        else:
            self._pending.append((service_time, on_done, args))

    def _finish(self, on_done: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self._jobs_done += 1
        pending = self._pending
        if pending:
            # Chain the next queued job's completion before running this
            # job's callback, exactly where the un-chained code started it:
            # the fresh seq is allocated at the same instant, so tie-breaking
            # against any event the callback schedules is unchanged.
            service_time, queued_on_done, queued_args = pending.popleft()
            self._busy_time += service_time
            self._schedule_fast(service_time, self._finish, queued_on_done, queued_args)
            PERF.cpu_jobs_coalesced += 1
        else:
            self._busy -= 1
        on_done(*args)


class SimProcess:
    """Base class for every simulated actor (client, node, executor, verifier).

    A process owns an identity, a region, an optional CPU resource, and helper
    methods for scheduling timers.  Subclasses implement ``on_message`` to
    receive network deliveries.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        region: str,
        cores: Optional[int] = None,
    ) -> None:
        self._sim = sim
        self._name = name
        self._region = region
        self._cpu = CpuResource(sim, cores, name=f"{name}.cpu") if cores else None

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def name(self) -> str:
        return self._name

    @property
    def region(self) -> str:
        return self._region

    @property
    def cpu(self) -> Optional[CpuResource]:
        return self._cpu

    @property
    def now(self) -> float:
        return self._sim.now

    def set_timer(self, delay: float, callback: Callable[..., Any], *args: Any):
        """Schedule a cancellable timer owned by this process."""
        return self._sim.schedule(delay, callback, *args)

    def set_timer_fast(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget timer: no cancellation handle, kernel fast path.

        For delays that are never cancelled (service-time modelling,
        processing pipelines); same ordering semantics as :meth:`set_timer`.
        """
        self._sim.schedule_fast(delay, callback, *args)

    def process(self, service_time: float, on_done: Callable[..., Any], *args: Any) -> None:
        """Consume CPU time before running ``on_done(*args)`` (no CPU ⇒ immediate).

        Arguments must be values whose evaluation *now* is equivalent to
        evaluating them at completion time (use a closure when a late read
        matters, e.g. the current primary after a possible view change).
        """
        if self._cpu is None or service_time <= 0:
            on_done(*args)
        else:
            self._cpu.submit(service_time, on_done, *args)

    def process_parallel(
        self,
        total_time: float,
        parallelism: int,
        on_done: Callable[..., Any],
        *args: Any,
    ) -> None:
        """Consume ``total_time`` core-seconds of perfectly parallel work.

        The work is modelled as a single job whose duration is the total
        divided by the usable parallelism (bounded by the node's core count).
        This is how batched signature verification exploits ResilientDB's
        worker threads in the real system.
        """
        if self._cpu is None or total_time <= 0:
            on_done(*args)
            return
        usable = max(1, min(self._cpu.cores, parallelism))
        self._cpu.submit(total_time / usable, on_done, *args)

    def on_message(self, message: Any, sender: str) -> None:  # pragma: no cover - interface
        """Handle a delivered network message.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self._name!r}, region={self._region!r})"
