"""Append-only JSONL backend — the original result-store file format.

Each record keys a simulation result by the SHA-256 digest of its resolved
point spec (see :func:`repro.sweep.spec.point_digest`).  Re-running a sweep
looks every point up before simulating, so completed points are never
re-simulated and an interrupted sweep resumes where it stopped: records are
appended and flushed one by one as points finish.

The file format is one key-sorted JSON object per line::

    {"digest": "...", "sweep": "...", "labels": {...}, "result_schema": "...",
     "point": {resolved spec...}, "result": {result dict...}}

Records are durable once reported: every append is flushed *and* fsynced,
so a point the runner has announced as persisted survives a host or
container crash, not just a process exit.  Appends additionally take an
advisory ``flock`` on the file (where the platform provides one), so two
*processes* appending to the same store interleave whole records, never
bytes.  Corrupt or truncated lines (a run killed mid-write) are skipped on
load — wherever they sit in the file, valid records before and after a
torn one still load — and a later append first repairs a torn tail with a
newline so the new record never concatenates onto the debris.  The digest
of a well-formed record is trusted — it was computed from the stored
``point`` payload by the writer and is re-derivable from it.

Records whose ``result_schema`` tag does not match the current
:data:`~repro.store.record.RESULT_SCHEMA_TAG` are ignored: the point
digest only covers the *input* spec, so a result-layout change must turn
old records into cache misses (and a re-simulation), not deserialisation
crashes.  Unlike torn lines, such skips are *counted* — the total is
logged at load and surfaces in ``repro.store stat`` — so a cold cache is
diagnosable, not a mystery.
"""

from __future__ import annotations

import copy
import json
import logging
import os
from typing import Dict, Iterator, Mapping, Optional, Sequence

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts: no advisory locks
    fcntl = None  # type: ignore[assignment]

from repro.store.query import matches
from repro.store.record import (
    STATUS_OK,
    STATUS_STALE_SCHEMA,
    RESULT_SCHEMA_TAG,
    canonical_line,
    make_record,
    record_status,
)
from repro.store.backend import StoreStat

logger = logging.getLogger("repro.store.jsonl")


class JsonlBackend:
    """Digest-keyed persistent result cache backed by one JSONL file."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._records: Dict[str, dict] = {}
        self._schema_skips = 0
        self._torn_skips = 0
        self._load()

    @property
    def path(self) -> str:
        return self._path

    @property
    def schema_skips(self) -> int:
        """Well-formed records ignored at load for a stale result_schema."""
        return self._schema_skips

    @property
    def torn_skips(self) -> int:
        """Corrupt/torn lines skipped at load."""
        return self._torn_skips

    def _load(self) -> None:
        if not os.path.exists(self._path):
            return
        with open(self._path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn write from an interrupted run: skipping it is the
                    # documented recovery path, but never a silent one — a
                    # store that loses lines for any *other* reason must be
                    # diagnosable from the logs.
                    self._torn_skips += 1
                    logger.warning(
                        "%s:%d: skipping corrupt/torn record", self._path, lineno
                    )
                    continue
                status = record_status(record)
                if status == STATUS_OK:
                    self._records[record["digest"]] = record
                elif status == STATUS_STALE_SCHEMA:
                    self._schema_skips += 1
                else:
                    self._torn_skips += 1
        if self._schema_skips:
            # The "why is my cache cold" diagnostic: stale-layout records
            # are deliberate cache misses, and there can be thousands of
            # them after a SimulationResult change — one summary line, not
            # one warning per record.
            logger.warning(
                "%s: ignored %d record(s) with a stale result_schema "
                "(current tag %s); they will re-simulate as cache misses",
                self._path,
                self._schema_skips,
                RESULT_SCHEMA_TAG,
            )

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, digest: str) -> bool:
        return digest in self._records

    def digests(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, digest: str) -> Optional[dict]:
        """A copy of the stored record for ``digest``, or None.

        A *copy*, deliberately: the in-memory map is the cache the rest of
        the run is served from, and callers routinely massage the record
        they get back (result post-processing, label edits for display).
        Handing out the internal dict would let any such edit silently
        corrupt every later cache hit for the same digest.
        """
        record = self._records.get(digest)
        return copy.deepcopy(record) if record is not None else None

    def _tail_is_torn(self) -> bool:
        """Whether the file ends in a partial line (crash mid-append).

        Appending straight after a torn tail would concatenate the new
        record onto the debris, turning one lost line into two.
        """
        try:
            with open(self._path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):  # missing or empty file
            return False

    def put(
        self,
        digest: str,
        resolved_point: Mapping[str, object],
        result: Mapping[str, object],
        sweep_name: str = "",
        timing: Optional[Mapping[str, float]] = None,
        retries: int = 0,
    ) -> dict:
        """Record one finished point: append, flush, and fsync.

        The fsync is what makes "persisted" mean persisted: without it a
        host or container crash could lose points the runner already
        reported as cached for the next run.  See
        :func:`repro.store.record.make_record` for what ``timing`` and
        ``retries`` record.
        """
        return self.put_record(
            make_record(digest, resolved_point, result, sweep_name, timing, retries)
        )

    def put_record(self, record: Mapping[str, object]) -> dict:
        """Append an already-built record: lock, repair, write, fsync.

        The advisory ``flock`` makes multi-process appends safe: the torn-
        tail check and the write happen under one exclusive lock, so two
        workers appending to a shared store can neither interleave bytes
        nor both "repair" the same tail.  On platforms without ``fcntl``
        the append falls back to the single-writer discipline the store
        always had.
        """
        stored = dict(record)
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self._path, "a", encoding="utf-8") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                # Check the tail *under the lock*: another process may have
                # appended (or repaired) since this handle was opened.
                if self._tail_is_torn():
                    handle.write("\n")
                handle.write(canonical_line(stored) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        if record_status(stored) == STATUS_OK:
            self._records[stored["digest"]] = stored
        return stored

    def iter_records(
        self, sweeps: Optional[Sequence[str]] = None
    ) -> Iterator[dict]:
        """Copies of the loadable records, optionally filtered by sweep name."""
        wanted = set(sweeps) if sweeps is not None else None
        for record in self._records.values():
            if wanted is None or record.get("sweep") in wanted:
                yield copy.deepcopy(record)

    def select(
        self,
        where: Optional[Mapping[str, object]] = None,
        sweeps: Optional[Sequence[str]] = None,
    ) -> Iterator[dict]:
        for record in self.iter_records(sweeps):
            if matches(record, where):
                yield record

    def stat(self) -> StoreStat:
        sweeps: Dict[str, int] = {}
        for record in self._records.values():
            name = str(record.get("sweep", ""))
            sweeps[name] = sweeps.get(name, 0) + 1
        return StoreStat(
            url=self._path,
            backend="jsonl",
            records=len(self._records),
            schema_skips=self._schema_skips,
            torn_skips=self._torn_skips,
            sweeps=dict(sorted(sweeps.items())),
        )
