"""The result-record schema shared by every warehouse backend.

One store record describes one finished point: the content address of its
resolved spec, the spec itself, the simulated result, and host-side
provenance (which sweep produced it, timing, retries).  Every backend —
JSONL file, sqlite database, sharded directory — persists exactly this
shape, so records migrate between backends losslessly and a report reads
identically from any of them.

The fields partition into two declared groups, mirroring the
``SIMULATED_RESULT_FIELDS`` / ``HOST_SPEED_FIELDS`` discipline the DIG002
lint rule enforces for :class:`~repro.core.runner.SimulationResult`:

* ``ADDRESSED_RECORD_FIELDS`` — determined by the point's content address.
  ``point`` is what the digest hashes, ``digest`` is that hash, and
  ``result``/``result_schema`` are pure functions of the point (the A/B
  determinism suites are exactly the proof).  Two records for the same
  digest must agree on every addressed field; a shard merge treats a
  disagreement as a determinism violation, not a tie to break.
* ``HOST_SIDE_RECORD_FIELDS`` — provenance of the run that happened to
  produce the record (sweep name, labels, host timing, worker retries,
  observability summary).  Never part of the record's identity: a merge
  resolves host-side differences deterministically and a re-run on a
  different host may legitimately disagree here.

DIG002 checks the partition statically (every ``StoreRecord`` field must
appear in exactly one group) and ``tests/test_lint.py`` re-checks it
against ``dataclasses.fields`` at runtime.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.cloud.billing import BillingReport
from repro.core.runner import SimulationResult
from repro.sim.stats import LatencySummary


def _schema_tag() -> str:
    """A short fingerprint of the result layout, derived from the dataclass
    fields themselves: any change to ``SimulationResult`` (or its nested
    latency/billing summaries) yields a new tag automatically, so stale
    store records register as cache misses instead of crashing
    ``result_from_dict`` — no manual version bump to forget."""
    names = []
    for cls in (SimulationResult, LatencySummary, BillingReport):
        names.append(cls.__name__)
        names.extend(sorted(f.name for f in dataclasses.fields(cls)))
    return hashlib.sha256("/".join(names).encode("utf-8")).hexdigest()[:12]


#: Tag stamped on every record; records carrying another tag are cache
#: misses (the point digest only covers the *input* spec, so a result-layout
#: change must invalidate old records, not crash deserialisation).
RESULT_SCHEMA_TAG = _schema_tag()


@dataclass(frozen=True)
class StoreRecord:
    """The canonical record shape — the schema anchor DIG002 checks.

    Backends trade in plain dicts (JSON round-trips are the persistence
    format), but this dataclass is the single declaration of which fields
    exist and which side of the addressed/host-side line each lives on.
    ``from_dict``/``to_dict`` round-trip the optional-field convention:
    ``timing``/``obs_summary`` are omitted when absent and ``retries`` when
    zero, byte-for-byte what the JSONL format has always written.
    """

    digest: str
    point: Dict[str, object]
    result: Dict[str, object]
    result_schema: str
    sweep: str = ""
    labels: Dict[str, object] = field(default_factory=dict)
    timing: Optional[Dict[str, float]] = None
    retries: int = 0
    obs_summary: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "digest": self.digest,
            "sweep": self.sweep,
            "labels": dict(self.labels),
            "result_schema": self.result_schema,
            "point": dict(self.point),
            "result": dict(self.result),
        }
        if self.timing is not None:
            payload["timing"] = dict(self.timing)
        if self.retries:
            payload["retries"] = int(self.retries)
        if self.obs_summary is not None:
            payload["obs_summary"] = dict(self.obs_summary)
        return payload


#: Fields determined by the point's content address (see module docstring).
ADDRESSED_RECORD_FIELDS = ("digest", "point", "result", "result_schema")

#: Host-side provenance: never part of the record's identity, resolved by
#: deterministic tie-break when shards disagree.
HOST_SIDE_RECORD_FIELDS = ("sweep", "labels", "timing", "retries", "obs_summary")


def make_record(
    digest: str,
    resolved_point: Mapping[str, object],
    result: Mapping[str, object],
    sweep_name: str = "",
    timing: Optional[Mapping[str, float]] = None,
    retries: int = 0,
) -> Dict[str, object]:
    """Build the record dict for one finished point (all backends share it).

    ``timing`` (optional) records the host-side setup/simulate/collect split
    of the run that produced the result; ``retries`` (recorded only when
    nonzero) counts worker deaths the point survived.  A traced result also
    gets a compact ``obs_summary`` so phase means and drop counts are
    greppable from the store alone (the full payload stays inside
    ``result["obs"]``).
    """
    record: Dict[str, object] = {
        "digest": digest,
        "sweep": sweep_name,
        "labels": resolved_point.get("labels", {}),
        "result_schema": RESULT_SCHEMA_TAG,
        "point": dict(resolved_point),
        "result": dict(result),
    }
    if timing is not None:
        record["timing"] = dict(timing)
    if retries:
        record["retries"] = int(retries)
    obs = result.get("obs")
    if isinstance(obs, Mapping):
        trace = obs.get("trace", {})
        record["obs_summary"] = {
            "spans": len(obs.get("spans", ())),
            "spans_dropped": obs.get("spans_dropped", 0),
            "trace_events": len(trace.get("events", ())),
            "trace_dropped": trace.get("dropped", 0),
            "phase_mean_seconds": {
                name: summary.get("mean")
                for name, summary in obs.get("phases", {}).items()
            },
        }
    return record


def canonical_line(record: Mapping[str, object]) -> str:
    """The record's canonical JSONL serialisation (no trailing newline).

    Key-sorted JSON — the byte form every backend appends and the total
    order shard merges sort by, so merged bytes cannot depend on which
    worker wrote what.
    """
    return json.dumps(record, sort_keys=True)


#: ``record_status`` verdicts.
STATUS_OK = "ok"
STATUS_INVALID = "invalid"
STATUS_STALE_SCHEMA = "stale-schema"


def record_status(record: object) -> str:
    """Classify a parsed record: loadable, malformed, or stale-layout.

    ``stale-schema`` records are well-formed data written by an older
    ``SimulationResult`` layout — they must count as cache *misses*, and
    (unlike torn lines) they are countable, so "why is my cache cold" is
    diagnosable from ``repro.store stat``.
    """
    if not isinstance(record, Mapping):
        return STATUS_INVALID
    if not isinstance(record.get("digest"), str) or "result" not in record:
        return STATUS_INVALID
    if record.get("result_schema") != RESULT_SCHEMA_TAG:
        return STATUS_STALE_SCHEMA
    return STATUS_OK


def addressed_view(record: Mapping[str, object]) -> Dict[str, object]:
    """The addressed-field projection used for merge-conflict detection."""
    return {name: record.get(name) for name in ADDRESSED_RECORD_FIELDS}
