"""Record filtering shared by every backend's ``select`` and the store CLI.

A *where* clause is a flat mapping of dotted record paths to required
values: ``{"sweep": "smoke", "labels.batch_size": 25}`` matches records
whose ``sweep`` field equals ``"smoke"`` and whose ``labels`` dict carries
``batch_size == 25``.  Paths walk nested mappings (``point.system``,
``result.committed_txns``, ``labels.clients``); a missing segment never
matches.  Backends may push whatever subset of a clause they can into
their native query engine (sqlite pushes sweep/system/scenario columns and
``labels.*`` via JSON1), but every yielded record is re-checked with
:func:`matches`, so filtering semantics are identical across backends by
construction.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from repro.errors import ConfigurationError


def resolve_record_path(record: Mapping[str, object], path: str) -> object:
    """Walk a dotted ``path`` into a record; ``None`` when absent.

    A missing segment (or a non-mapping in the middle of the path) yields
    ``None`` rather than raising, so optional fields can be probed record
    by record — same convention as
    :func:`repro.report.aggregate.resolve_result_field`.
    """
    value: object = record
    for part in path.split("."):
        if not isinstance(value, Mapping) or part not in value:
            return None
        value = value[part]
    return value


def matches(record: Mapping[str, object], where: Optional[Mapping[str, object]]) -> bool:
    """Whether ``record`` satisfies every path=value constraint of ``where``."""
    if not where:
        return True
    for path, wanted in where.items():
        value = resolve_record_path(record, path)
        if isinstance(wanted, bool) or isinstance(value, bool):
            # JSON backends may surface bools as 0/1; compare identity-of-
            # truth explicitly so True never silently equals 1.0 one way
            # and not the other.
            if bool(value) is not bool(wanted) or (value is None) != (wanted is None):
                return False
            continue
        if value != wanted:
            return False
    return True


def parse_where(pairs: List[str]) -> Dict[str, object]:
    """Parse repeated ``--where path=value`` flags; values are JSON if valid.

    ``--where labels.batch_size=25`` yields an int constraint,
    ``--where sweep=smoke`` a string one — the same convention as the sweep
    CLI's ``--set`` flags.
    """
    where: Dict[str, object] = {}
    for pair in pairs:
        path, separator, raw = pair.partition("=")
        if not separator or not path:
            raise ConfigurationError(f"--where expects path=value, got {pair!r}")
        try:
            value: object = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        where[path] = value
    return where
