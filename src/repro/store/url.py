"""URL-style store selection: one string names any backend.

Every ``--store`` flag (sweep CLI, report CLI, store CLI) and every
``store=`` argument of :func:`repro.api.run` accepts the same forms:

* ``results.jsonl`` (any plain file path) — the append-only JSONL backend
* ``sqlite://results.db`` — the indexed sqlite backend; a bare path ending
  in ``.db`` / ``.sqlite`` / ``.sqlite3`` selects sqlite too
* ``shard://results/`` — a sharded directory; a bare path naming an
  existing directory selects sharding too
* ``jsonl://results`` — force JSONL for a path the heuristics would
  misread

The choice is **host-side, never content-addressed**: a record's digest,
point, and result are identical whichever backend stores them, so switching
backends (or :func:`repro.store.cli` ``migrate``-ing between them) can
never change cache hits or report output.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.store.backend import ResultBackend
from repro.store.jsonl import JsonlBackend
from repro.store.sharded import ShardedStore
from repro.store.sqlite import SqliteBackend

_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def open_store(url: str, shard: Optional[str] = None) -> ResultBackend:
    """Open the backend a store URL (or bare path) names.

    ``shard`` pins the shard token for ``shard://`` stores (otherwise
    ``$REPRO_SHARD`` or a hostname-pid default applies); it is ignored by
    single-file backends.
    """
    if url.startswith("sqlite://"):
        return SqliteBackend(url[len("sqlite://"):])
    if url.startswith("shard://"):
        return ShardedStore(url[len("shard://"):], shard=shard)
    if url.startswith("jsonl://"):
        return JsonlBackend(url[len("jsonl://"):])
    if url.endswith(_SQLITE_SUFFIXES):
        return SqliteBackend(url)
    if os.path.isdir(url):
        return ShardedStore(url, shard=shard)
    return JsonlBackend(url)


def as_backend(
    store: Union[str, ResultBackend, None], shard: Optional[str] = None
) -> Optional[ResultBackend]:
    """Coerce a store argument (URL string, backend, or None) to a backend."""
    if store is None or not isinstance(store, str):
        return store
    return open_store(store, shard=shard)
