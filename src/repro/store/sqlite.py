"""Indexed sqlite backend — the queryable half of the result warehouse.

One table, keyed by digest, holding the full canonical record JSON plus
indexed columns for what queries actually filter and sort on: sweep name,
system, scenario, the labels dict (queried through sqlite's JSON1
``json_extract``), and the headline result scalars.  Thousand-point sweeps
stop being grep-a-JSONL exercises: ``repro.store query`` and
``repro.report`` narrow by index instead of materialising every record.

Durability matches the JSONL contract: the database runs in WAL mode with
``synchronous=FULL``, so a committed ``put`` has reached the disk before
the call returns, and concurrent readers never block the writer (nor the
writer them).  Cross-process writers serialise on sqlite's own write lock
with a generous busy timeout — two sweep processes appending to the same
database interleave whole transactions, never partial records.

Schema discipline is shared with every other backend through
:mod:`repro.store.record`: rows whose ``result_schema`` tag is stale stay
in the table (the data is not destroyed) but are invisible to
``get``/``digests``/``select`` and are counted by ``stat()`` — the same
countable cache-miss diagnostic the JSONL backend logs.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.store.backend import StoreStat
from repro.store.query import matches
from repro.store.record import RESULT_SCHEMA_TAG, canonical_line, make_record

#: URL prefix understood by :func:`repro.store.url.open_store`.
URL_PREFIX = "sqlite://"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    digest TEXT PRIMARY KEY,
    result_schema TEXT NOT NULL,
    sweep TEXT NOT NULL DEFAULT '',
    system TEXT NOT NULL DEFAULT '',
    scenario TEXT NOT NULL DEFAULT '',
    labels TEXT NOT NULL DEFAULT '{}',
    throughput_txn_per_sec REAL,
    committed_txns INTEGER,
    aborted_txns INTEGER,
    latency_mean REAL,
    record TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_sweep ON results (sweep);
CREATE INDEX IF NOT EXISTS idx_results_system_scenario
    ON results (system, scenario);
CREATE INDEX IF NOT EXISTS idx_results_schema ON results (result_schema);
CREATE INDEX IF NOT EXISTS idx_results_throughput
    ON results (throughput_txn_per_sec);
"""

#: Where-clause paths that map straight onto indexed TEXT columns.
_COLUMN_PATHS = {
    "sweep": "sweep",
    "point.system": "system",
    "point.scenario": "scenario",
}


class SqliteBackend:
    """Digest-keyed result store backed by one indexed sqlite database."""

    def __init__(self, path: str) -> None:
        self._path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path)
        # WAL: readers never block the writer; FULL: a committed put has
        # been fsynced — the same durability the JSONL backend promises.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        # Cross-process writers wait on the write lock instead of failing
        # with "database is locked" while a peer commits.
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    @property
    def path(self) -> str:
        return self._path

    def close(self) -> None:
        self._conn.close()

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM results WHERE result_schema = ?",
            (RESULT_SCHEMA_TAG,),
        ).fetchone()
        return int(row[0])

    def __contains__(self, digest: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE digest = ? AND result_schema = ?",
            (digest, RESULT_SCHEMA_TAG),
        ).fetchone()
        return row is not None

    def digests(self) -> Iterator[str]:
        rows = self._conn.execute(
            "SELECT digest FROM results WHERE result_schema = ? ORDER BY digest",
            (RESULT_SCHEMA_TAG,),
        )
        for (digest,) in rows:
            yield str(digest)

    def get(self, digest: str) -> Optional[dict]:
        """The record for ``digest`` (already a fresh parse — safe to mutate)."""
        row = self._conn.execute(
            "SELECT record FROM results WHERE digest = ? AND result_schema = ?",
            (digest, RESULT_SCHEMA_TAG),
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def put(
        self,
        digest: str,
        resolved_point: Mapping[str, object],
        result: Mapping[str, object],
        sweep_name: str = "",
        timing: Optional[Mapping[str, float]] = None,
        retries: int = 0,
    ) -> dict:
        """Durably record one finished point (synchronous WAL commit)."""
        return self.put_record(
            make_record(digest, resolved_point, result, sweep_name, timing, retries)
        )

    def put_record(self, record: Mapping[str, object]) -> dict:
        stored = dict(record)
        result = stored.get("result")
        result = result if isinstance(result, Mapping) else {}
        point = stored.get("point")
        point = point if isinstance(point, Mapping) else {}
        latency = result.get("latency")
        latency = latency if isinstance(latency, Mapping) else {}
        self._conn.execute(
            "INSERT OR REPLACE INTO results (digest, result_schema, sweep, "
            "system, scenario, labels, throughput_txn_per_sec, committed_txns, "
            "aborted_txns, latency_mean, record) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                str(stored.get("digest")),
                str(stored.get("result_schema", "")),
                str(stored.get("sweep", "")),
                str(point.get("system", "")),
                str(point.get("scenario", "")),
                json.dumps(stored.get("labels", {}), sort_keys=True),
                _as_float(result.get("throughput_txn_per_sec")),
                _as_int(result.get("committed_txns")),
                _as_int(result.get("aborted_txns")),
                _as_float(latency.get("mean")),
                canonical_line(stored),
            ),
        )
        self._conn.commit()
        return stored

    def iter_records(
        self, sweeps: Optional[Sequence[str]] = None
    ) -> Iterator[dict]:
        yield from self.select(where=None, sweeps=sweeps)

    def select(
        self,
        where: Optional[Mapping[str, object]] = None,
        sweeps: Optional[Sequence[str]] = None,
    ) -> Iterator[dict]:
        """Stream matching records, narrowing by index where possible.

        Indexed columns (sweep, system, scenario) and ``labels.*`` paths
        (via JSON1) become SQL predicates; every surviving row is still
        re-checked with :func:`repro.store.query.matches`, so the result
        set is *defined* by the shared matcher and the SQL is purely a
        narrowing optimisation — backend neutrality by construction.
        """
        clauses: List[str] = ["result_schema = ?"]
        params: List[object] = [RESULT_SCHEMA_TAG]
        if sweeps is not None:
            names = sorted(set(sweeps))
            clauses.append(
                "sweep IN (%s)" % ", ".join("?" for _ in names) if names else "0"
            )
            params.extend(names)
        for path, wanted in sorted((where or {}).items()):
            column = _COLUMN_PATHS.get(path)
            if column is not None and isinstance(wanted, str):
                clauses.append(f"{column} = ?")
                params.append(wanted)
            elif path.startswith("labels.") and "." not in path[len("labels."):]:
                if isinstance(wanted, (str, int, float)) and not isinstance(
                    wanted, bool
                ):
                    clauses.append("json_extract(labels, ?) = ?")
                    params.append("$." + path[len("labels."):])
                    params.append(wanted)
        sql = "SELECT record FROM results WHERE " + " AND ".join(clauses)
        try:
            rows = self._conn.execute(sql, params).fetchall()
        except sqlite3.OperationalError:
            # A build without JSON1: fall back to the unnarrowed scan — the
            # python-side matcher below still yields the exact result set.
            rows = self._conn.execute(
                "SELECT record FROM results WHERE result_schema = ?",
                (RESULT_SCHEMA_TAG,),
            ).fetchall()
        wanted_sweeps = set(sweeps) if sweeps is not None else None
        for (payload,) in rows:
            record = json.loads(payload)
            if wanted_sweeps is not None and record.get("sweep") not in wanted_sweeps:
                continue
            if matches(record, where):
                yield record

    def stat(self) -> StoreStat:
        schema_skips = int(
            self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE result_schema != ?",
                (RESULT_SCHEMA_TAG,),
            ).fetchone()[0]
        )
        sweeps: Dict[str, int] = {}
        rows = self._conn.execute(
            "SELECT sweep, COUNT(*) FROM results WHERE result_schema = ? "
            "GROUP BY sweep ORDER BY sweep",
            (RESULT_SCHEMA_TAG,),
        )
        for name, count in rows:
            sweeps[str(name)] = int(count)
        return StoreStat(
            url=URL_PREFIX + self._path,
            backend="sqlite",
            records=len(self),
            schema_skips=schema_skips,
            torn_skips=0,
            sweeps=sweeps,
        )


def _as_float(value: object) -> Optional[float]:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def _as_int(value: object) -> Optional[int]:
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    return None
