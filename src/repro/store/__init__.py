"""The result warehouse: backend-abstracted, queryable result storage.

Grown out of the sweep layer's single JSONL file (``repro.sweep.store``,
now a compatibility shim over this package), the warehouse separates *what*
a result record is from *where* it lives:

* :mod:`repro.store.record` — the record schema every backend shares, with
  its addressed/host-side field partition (lint-enforced via DIG002).
* :mod:`repro.store.backend` — the :class:`ResultBackend` protocol the
  runner, facade, report layer, and CLIs are written against.
* :mod:`repro.store.jsonl` — :class:`JsonlBackend`, the original
  append-only JSONL file (torn-tail repair, fsync-per-append, advisory
  ``flock`` for multi-process appends).
* :mod:`repro.store.sqlite` — :class:`SqliteBackend`, one indexed table in
  WAL mode: sweeps stop being grep-a-JSONL exercises.
* :mod:`repro.store.sharded` — :class:`ShardedStore`, per-worker shards in
  one directory plus a deterministic, content-sorted merge: N hosts on a
  shared filesystem split one grid.
* :mod:`repro.store.url` — :func:`open_store`, the URL scheme every
  ``--store`` flag speaks (``path.jsonl``, ``sqlite://path.db``,
  ``shard://dir``).
* :mod:`repro.store.query` — the dotted-path where-clause matcher shared
  by every backend's ``select`` and the ``repro.store query`` CLI.

Store choice is host-side and never content-addressed: the same sweep
produces identical digests, records, and cache hits on every backend, and
``merge`` output bytes are independent of which worker wrote what — the
A/B suite in ``tests/test_store_backends.py`` is the proof.
"""

from repro.store.backend import ResultBackend, StoreStat
from repro.store.jsonl import JsonlBackend
from repro.store.query import matches, parse_where, resolve_record_path
from repro.store.record import (
    ADDRESSED_RECORD_FIELDS,
    HOST_SIDE_RECORD_FIELDS,
    RESULT_SCHEMA_TAG,
    StoreRecord,
    canonical_line,
    make_record,
    record_status,
)
from repro.store.sharded import (
    MergeStats,
    ShardedStore,
    compact_shards,
    merge_shards,
)
from repro.store.sqlite import SqliteBackend
from repro.store.url import as_backend, open_store

__all__ = [
    "ADDRESSED_RECORD_FIELDS",
    "HOST_SIDE_RECORD_FIELDS",
    "JsonlBackend",
    "MergeStats",
    "RESULT_SCHEMA_TAG",
    "ResultBackend",
    "ShardedStore",
    "SqliteBackend",
    "StoreRecord",
    "StoreStat",
    "as_backend",
    "canonical_line",
    "compact_shards",
    "make_record",
    "matches",
    "merge_shards",
    "open_store",
    "parse_where",
    "record_status",
    "resolve_record_path",
]
