"""``python -m repro.store`` — see :mod:`repro.store.cli`."""

import sys

from repro.store.cli import main

if __name__ == "__main__":
    sys.exit(main())
