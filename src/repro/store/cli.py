"""Command-line entry point: ``python -m repro.store``.

The query/maintenance half of the result warehouse::

    stat URL                      record counts, skip diagnostics, shards
    query URL [--where P=V ...]   stream matching records (table or JSONL)
    merge DIR --output OUT        deterministic shard merge -> canonical JSONL
    compact DIR                   merge a shard directory in place
    migrate SRC DST               copy every loadable record between backends

URLs select the backend: ``results.jsonl``, ``sqlite://results.db``,
``shard://results/`` (see :mod:`repro.store.url`).  Nothing here ever
simulates: every subcommand is a pure read except ``merge``/``compact``/
``migrate``, which rewrite records byte-identically.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.store.query import parse_where, resolve_record_path
from repro.store.sharded import compact_shards, merge_shards
from repro.store.url import open_store


def _cmd_stat(args: argparse.Namespace) -> int:
    stat = open_store(args.store).stat()
    print(f"store:         {stat.url}")
    print(f"backend:       {stat.backend}")
    print(f"records:       {stat.records}")
    print(f"schema-skips:  {stat.schema_skips}  (stale result_schema -> cache misses)")
    print(f"torn-skips:    {stat.torn_skips}  (corrupt/truncated lines)")
    for name, count in stat.sweeps.items():
        print(f"  sweep {name or '(unnamed)'!s:<24} {count:>6} records")
    for name, count in stat.shards.items():
        print(f"  shard {name:<24} {count:>6} records")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    store = open_store(args.store)
    where = parse_where(args.where or [])
    records = list(store.select(where=where, sweeps=args.sweep or None))
    if args.count:
        print(len(records))
        return 0
    if args.jsonl:
        for record in records:
            print(json.dumps(record, sort_keys=True))
        return 0
    metrics = args.metric or ["result.throughput_txn_per_sec", "result.committed_txns"]
    for record in records:
        labels = " ".join(
            f"{key}={value}"
            for key, value in dict(record.get("labels", {})).items()
        )
        values = " ".join(
            f"{path.rsplit('.', 1)[-1]}={resolve_record_path(record, path)}"
            for path in metrics
        )
        print(
            f"{str(record.get('digest'))[:12]} sweep={record.get('sweep') or '-'} "
            f"{labels or '-'} {values}"
        )
    print(f"[store] {len(records)} record(s)", file=sys.stderr)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    stats = merge_shards(args.directory, args.output)
    print(
        f"[store] merged {stats.shards} shard(s) -> {args.output}: "
        f"{stats.records} records ({stats.duplicates} duplicate(s) folded, "
        f"{stats.schema_skips} stale-schema and {stats.torn_skips} torn "
        f"line(s) dropped)"
    )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    stats, target = compact_shards(args.directory)
    print(
        f"[store] compacted {stats.shards} shard(s) -> {target}: "
        f"{stats.records} records ({stats.duplicates} duplicate(s) folded, "
        f"{stats.schema_skips} stale-schema and {stats.torn_skips} torn "
        f"line(s) dropped)"
    )
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    source = open_store(args.source)
    destination = open_store(args.destination)
    count = 0
    for record in source.iter_records():
        destination.put_record(record)
        count += 1
    print(
        f"[store] migrated {count} record(s): {args.source} -> {args.destination}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stat = sub.add_parser("stat", help="record counts and skip diagnostics")
    stat.add_argument("store", help="store URL (path.jsonl, sqlite://db, shard://dir)")
    stat.set_defaults(func=_cmd_stat)

    query = sub.add_parser("query", help="stream records matching a where clause")
    query.add_argument("store", help="store URL")
    query.add_argument(
        "--where",
        action="append",
        metavar="PATH=VALUE",
        help="dotted-path equality filter (repeatable), e.g. "
        "--where sweep=smoke --where labels.batch_size=25",
    )
    query.add_argument(
        "--sweep", action="append", metavar="NAME", help="filter to the named sweep(s)"
    )
    query.add_argument(
        "--metric",
        action="append",
        metavar="PATH",
        help="result-dict path to print per record (repeatable)",
    )
    query.add_argument(
        "--count", action="store_true", help="print only the matching record count"
    )
    query.add_argument(
        "--jsonl", action="store_true", help="print full records as canonical JSONL"
    )
    query.set_defaults(func=_cmd_query)

    merge = sub.add_parser(
        "merge", help="merge a shard directory into one canonical JSONL file"
    )
    merge.add_argument("directory", help="shard directory (as in shard://dir)")
    merge.add_argument("--output", required=True, help="canonical JSONL output path")
    merge.set_defaults(func=_cmd_merge)

    compact = sub.add_parser(
        "compact", help="merge a shard directory in place (shards -> one file)"
    )
    compact.add_argument("directory", help="shard directory")
    compact.set_defaults(func=_cmd_compact)

    migrate = sub.add_parser(
        "migrate", help="copy every loadable record from one backend to another"
    )
    migrate.add_argument("source", help="source store URL")
    migrate.add_argument("destination", help="destination store URL")
    migrate.set_defaults(func=_cmd_migrate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
