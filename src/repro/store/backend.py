"""``ResultBackend`` — the protocol every result store speaks.

The sweep runner, the facade, the report layer, and the CLIs are all
written against this protocol, never against a concrete class: anything
that can answer "have I simulated this digest?" (``__contains__``/``get``)
and durably record a finished point (``put``) can back a sweep, and
anything that can stream its records (``iter_records``/``select``) can
feed a report.  Three implementations ship: the original append-only JSONL
file (:class:`~repro.store.jsonl.JsonlBackend`), an indexed sqlite
database (:class:`~repro.store.sqlite.SqliteBackend`), and a directory of
per-worker shards (:class:`~repro.store.sharded.ShardedStore`).

The contract every backend honours:

* **Durability** — ``put`` returns only after the record reached the disk
  (fsync for JSONL appends, a synchronous WAL commit for sqlite), so a
  point the runner reported as persisted survives a host crash.
* **Cache-hit semantics** — ``get``/``__contains__`` serve only records
  whose ``result_schema`` matches the current layout tag; stale records
  are counted (``stat().schema_skips``), never silently dropped.
* **Isolation of the cache** — ``get`` and ``iter_records`` hand out
  copies; mutating a returned record cannot corrupt later reads.
* **Backend neutrality** — the same sweep produces the same digests and
  the same cache hits whichever backend stores it; the record payloads are
  byte-identical under :func:`~repro.store.record.canonical_line`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)


@dataclass(frozen=True)
class StoreStat:
    """What ``repro.store stat`` reports about one backend."""

    url: str
    backend: str  # "jsonl" | "sqlite" | "shard"
    records: int
    #: Well-formed records ignored because their ``result_schema`` tag is
    #: stale — the countable "why is my cache cold" diagnostic.
    schema_skips: int
    #: Corrupt/torn lines skipped at load (JSONL backends only).
    torn_skips: int
    #: Record count per sweep name, sorted by name.
    sweeps: Dict[str, int] = field(default_factory=dict)
    #: Per-shard record counts (sharded stores only), sorted by shard file.
    shards: Dict[str, int] = field(default_factory=dict)


@runtime_checkable
class ResultBackend(Protocol):
    """Digest-keyed persistent result store (see module docstring)."""

    @property
    def path(self) -> str:
        """The backend's location string (file, database, or directory)."""
        ...

    def __len__(self) -> int:
        """Loadable (current-schema) record count."""
        ...

    def __contains__(self, digest: str) -> bool:
        ...

    def digests(self) -> Iterator[str]:
        ...

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """A *copy* of the record for ``digest``, or None if never simulated."""
        ...

    def put(
        self,
        digest: str,
        resolved_point: Mapping[str, object],
        result: Mapping[str, object],
        sweep_name: str = "",
        timing: Optional[Mapping[str, float]] = None,
        retries: int = 0,
    ) -> Dict[str, object]:
        """Durably record one finished point; returns the stored record."""
        ...

    def put_record(self, record: Mapping[str, object]) -> Dict[str, object]:
        """Store an already-built record verbatim (migrate/merge path)."""
        ...

    def iter_records(
        self, sweeps: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, object]]:
        """Stream copies of the loadable records, optionally by sweep name."""
        ...

    def select(
        self,
        where: Optional[Mapping[str, object]] = None,
        sweeps: Optional[Sequence[str]] = None,
    ) -> Iterator[Dict[str, object]]:
        """Stream records matching a dotted-path where clause.

        Semantics are defined by :func:`repro.store.query.matches`; backends
        may use native indexes to narrow the scan but must not change which
        records come back.
        """
        ...

    def stat(self) -> StoreStat:
        ...
