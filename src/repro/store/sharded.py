"""Sharded store — per-worker JSONL shards with a deterministic merge.

The distributed half of the result warehouse: a *directory* of JSONL shard
files, one per writer.  N hosts on a shared filesystem split one grid by
pointing every run at the same ``shard://dir`` store — each process
appends only to its own shard (named by its shard token, so writers never
contend on a file) while reading *all* shards for cache hits.  A torn line
in one shard costs that shard one record, never the directory.

``merge`` then produces the canonical store: every loadable record from
every shard, deduplicated by digest, sorted by content, written as
canonical JSONL.  The output bytes are a pure function of the record *set*
— independent of which worker wrote what, in which order, under which
shard name — which is what lets CI diff two merges of the same grid run.
Deduplication enforces the :mod:`repro.store.record` partition: records
sharing a digest must agree on every addressed field (two workers
simulating one point are bit-identical, per the A/B suites — a mismatch
means nondeterminism and raises :class:`~repro.errors.StoreError`), while
host-side differences (timing, retries, sweep provenance) are resolved by
a deterministic tie-break on the canonical byte form.

``compact`` is merge-in-place: the directory's shards collapse into one
``shard-compacted.jsonl``, which later writers treat as just another peer
shard.
"""

from __future__ import annotations

import copy
import glob
import os
import re
import socket
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.store.backend import StoreStat
from repro.store.jsonl import JsonlBackend
from repro.store.query import matches
from repro.store.record import addressed_view, canonical_line

#: URL prefix understood by :func:`repro.store.url.open_store`.
URL_PREFIX = "shard://"

#: Environment variable naming this process's shard token (CI sets it per
#: host/worker; unset, the token derives from hostname + pid).
SHARD_ENV = "REPRO_SHARD"

#: Token of the shard ``compact`` writes; user tokens may not claim it.
COMPACTED_TOKEN = "compacted"

_TOKEN_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def default_shard_token() -> str:
    """This process's shard identity: ``$REPRO_SHARD`` or hostname-pid.

    Host-side only — the token names a *file*, never enters a record or a
    digest, and the merge output is independent of it by construction.
    """
    token = os.environ.get(SHARD_ENV, "")
    if not token:
        token = f"{socket.gethostname()}-{os.getpid()}"
    return sanitize_token(token)


def sanitize_token(token: str) -> str:
    cleaned = _TOKEN_SAFE.sub("-", token).strip("-.")
    if not cleaned:
        raise StoreError(f"unusable shard token {token!r}")
    return cleaned


def _shard_path(directory: str, token: str) -> str:
    return os.path.join(directory, f"shard-{token}.jsonl")


def shard_files(directory: str) -> List[str]:
    """Every shard file in ``directory``, in sorted (deterministic) order."""
    return sorted(glob.glob(os.path.join(directory, "*.jsonl")))


class ShardedStore:
    """A directory of per-writer JSONL shards, read as one store.

    Writes go to this process's own shard (token from ``shard=``, then
    ``$REPRO_SHARD``, then hostname-pid); reads see the union of every
    shard present when the store was opened — the same open-time snapshot
    semantics the single-file store has always had.  Records duplicated
    across shards resolve exactly like ``merge`` resolves them, so cache
    hits and merged stores can never disagree.
    """

    def __init__(self, directory: str, shard: Optional[str] = None) -> None:
        self._dir = directory
        os.makedirs(directory, exist_ok=True)
        token = sanitize_token(shard) if shard is not None else default_shard_token()
        self._token = token
        own_path = _shard_path(directory, token)
        self._own = JsonlBackend(own_path)
        self._peers = [
            JsonlBackend(path)
            for path in shard_files(directory)
            if os.path.abspath(path) != os.path.abspath(own_path)
        ]
        # The combined view: every shard's records, conflicts resolved by
        # the merge rule (addressed fields must agree; host-side ties break
        # on canonical bytes).  Built once at open; puts update it.
        self._records: Dict[str, dict] = {}
        for backend in [self._own] + self._peers:
            for record in backend.iter_records():
                _absorb(self._records, record, source=backend.path)

    @property
    def path(self) -> str:
        return self._dir

    @property
    def shard_token(self) -> str:
        return self._token

    @property
    def shard_path(self) -> str:
        """The JSONL file this process appends to."""
        return self._own.path

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, digest: str) -> bool:
        return digest in self._records

    def digests(self) -> Iterator[str]:
        return iter(sorted(self._records))

    def get(self, digest: str) -> Optional[dict]:
        record = self._records.get(digest)
        if record is None:
            return None
        return copy.deepcopy(record)

    def put(
        self,
        digest: str,
        resolved_point: Mapping[str, object],
        result: Mapping[str, object],
        sweep_name: str = "",
        timing: Optional[Mapping[str, float]] = None,
        retries: int = 0,
    ) -> dict:
        record = self._own.put(
            digest, resolved_point, result, sweep_name, timing, retries
        )
        _absorb(self._records, record, source=self._own.path)
        return record

    def put_record(self, record: Mapping[str, object]) -> dict:
        stored = self._own.put_record(record)
        _absorb(self._records, stored, source=self._own.path)
        return stored

    def iter_records(
        self, sweeps: Optional[Sequence[str]] = None
    ) -> Iterator[dict]:
        wanted = set(sweeps) if sweeps is not None else None
        for digest in sorted(self._records):
            record = self._records[digest]
            if wanted is None or record.get("sweep") in wanted:
                yield copy.deepcopy(record)

    def select(
        self,
        where: Optional[Mapping[str, object]] = None,
        sweeps: Optional[Sequence[str]] = None,
    ) -> Iterator[dict]:
        for record in self.iter_records(sweeps):
            if matches(record, where):
                yield record

    def stat(self) -> StoreStat:
        sweeps: Dict[str, int] = {}
        for record in self._records.values():
            name = str(record.get("sweep", ""))
            sweeps[name] = sweeps.get(name, 0) + 1
        shards = {
            os.path.basename(backend.path): len(backend)
            for backend in [self._own] + self._peers
            if os.path.exists(backend.path)
        }
        return StoreStat(
            url=URL_PREFIX + self._dir,
            backend="shard",
            records=len(self._records),
            schema_skips=sum(
                backend.schema_skips for backend in [self._own] + self._peers
            ),
            torn_skips=sum(
                backend.torn_skips for backend in [self._own] + self._peers
            ),
            sweeps=dict(sorted(sweeps.items())),
            shards=dict(sorted(shards.items())),
        )


def _absorb(records: Dict[str, dict], record: dict, source: str) -> None:
    """Fold one record into the combined view under the merge rule."""
    digest = str(record["digest"])
    existing = records.get(digest)
    if existing is None:
        records[digest] = record
        return
    if addressed_view(existing) != addressed_view(record):
        raise StoreError(
            f"shard merge conflict for digest {digest[:16]}…: two records "
            f"disagree on addressed fields (one from {source}) — the same "
            "point produced different results, which the determinism suites "
            "say cannot happen; refusing to pick a winner"
        )
    # Host-side-only difference: deterministic tie-break on canonical bytes,
    # so the winner cannot depend on shard names or write order.
    if canonical_line(record) < canonical_line(existing):
        records[digest] = record


@dataclass(frozen=True)
class MergeStats:
    """What a merge saw: kept records and per-shard skip counts."""

    records: int
    shards: int
    duplicates: int  # records dropped as same-digest twins
    schema_skips: int
    torn_skips: int


def merge_shards(directory: str, output_path: str) -> MergeStats:
    """Merge every shard in ``directory`` into canonical JSONL at ``output_path``.

    The output holds every loadable (current-schema) record exactly once,
    one canonical key-sorted JSON object per line, sorted by digest — a
    pure function of the record set, so the bytes are identical no matter
    which worker wrote which shard or in what order.  Stale-schema and
    torn lines are *counted* (see :class:`MergeStats`), never silently
    forgotten.  Refuses same-digest records that disagree on addressed
    fields (see module docstring).
    """
    files = shard_files(directory)
    combined: Dict[str, dict] = {}
    schema_skips = 0
    torn_skips = 0
    total = 0
    for path in files:
        backend = JsonlBackend(path)
        schema_skips += backend.schema_skips
        torn_skips += backend.torn_skips
        for record in backend.iter_records():
            total += 1
            _absorb(combined, record, source=path)
    out_dir = os.path.dirname(output_path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    tmp_path = output_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        for digest in sorted(combined):
            handle.write(canonical_line(combined[digest]) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, output_path)
    return MergeStats(
        records=len(combined),
        shards=len(files),
        duplicates=total - len(combined),
        schema_skips=schema_skips,
        torn_skips=torn_skips,
    )


def compact_shards(directory: str) -> Tuple[MergeStats, str]:
    """Collapse a shard directory into one canonical shard, in place.

    Merges into ``shard-compacted.jsonl`` (atomically, via a temp file that
    is *not* a ``.jsonl`` until renamed) and removes the source shards.
    Idempotent: compacting a compacted directory rewrites the same bytes.
    """
    files = shard_files(directory)
    target = _shard_path(directory, COMPACTED_TOKEN)
    stats = merge_shards(directory, target)
    for path in files:
        if os.path.abspath(path) != os.path.abspath(target):
            os.remove(path)
    return stats, target
