"""ServerlessBFT: reliable transactions in a serverless-edge architecture.

This package is a from-scratch Python reproduction of the ICDE 2023 paper
"Reliable Transactions in Serverless-Edge Architecture" (ServerlessBFT).
It contains the protocol itself (``repro.core``), every substrate the paper
depends on (discrete-event simulation, network, cryptography, storage,
serverless cloud, YCSB workloads), the baselines used in the evaluation,
and a benchmark harness that regenerates every figure of the paper.

Typical entry points:

* :class:`repro.core.config.ProtocolConfig` — configure a deployment.
* :class:`repro.core.runner.ServerlessBFTSimulation` — build and run a
  message-level simulation of the full architecture.
* :mod:`repro.bench.experiments` — regenerate the paper's figures.
"""

from repro.core.config import ProtocolConfig
from repro.core.runner import ServerlessBFTSimulation, SimulationResult
from repro.workload.ycsb import YCSBConfig, YCSBWorkload

__all__ = [
    "ProtocolConfig",
    "ServerlessBFTSimulation",
    "SimulationResult",
    "YCSBConfig",
    "YCSBWorkload",
    "__version__",
]

__version__ = "1.0.0"
