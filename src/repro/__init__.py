"""ServerlessBFT: reliable transactions in a serverless-edge architecture.

This package is a from-scratch Python reproduction of the ICDE 2023 paper
"Reliable Transactions in Serverless-Edge Architecture" (ServerlessBFT).
It contains the protocol itself (``repro.core``), every substrate the paper
depends on (discrete-event simulation, network, cryptography, storage,
serverless cloud, YCSB workloads), the baselines used in the evaluation,
and a benchmark harness that regenerates every figure of the paper.

Typical entry points:

* :mod:`repro.api` — the front door: ``run(RunSpec(...))`` builds and runs
  any registered system with composed scenarios and dotted-key overrides.
* :class:`repro.core.config.ProtocolConfig` — configure a deployment.
* :mod:`repro.bench.experiments` — regenerate the paper's figures.

(`ServerlessBFTSimulation` and the baseline builders remain importable but
are deprecated as *direct* entry points — construct deployments through
``repro.api`` instead.)
"""

from repro.core.config import ProtocolConfig
from repro.core.runner import ServerlessBFTSimulation, SimulationResult
from repro.workload.ycsb import YCSBConfig, YCSBWorkload

__all__ = [
    "ProtocolConfig",
    "RunSpec",
    "ServerlessBFTSimulation",
    "SimulationResult",
    "YCSBConfig",
    "YCSBWorkload",
    "__version__",
    "run",
]


def __getattr__(name: str):
    # Lazy so that ``import repro`` stays light; the facade pulls in the
    # sweep/scenario layers.
    if name in ("RunSpec", "run"):
        from repro.api import RunSpec, run

        return {"RunSpec": RunSpec, "run": run}[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"
