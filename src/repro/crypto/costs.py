"""CPU cost model for cryptographic operations.

The shim nodes in the paper run on 16-core Oracle Cloud VMs and use CryptoPP.
The absolute costs below are calibrated to commonly published numbers for
ED25519/HMAC on server-class cores; what matters for reproducing the paper's
*shapes* is the ratio between them (digital signatures roughly an order of
magnitude more expensive than MACs, verification slightly more expensive
than signing) and the per-message/batch processing overhead they induce.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CryptoCostModel:
    """CPU seconds charged for each cryptographic operation."""

    ds_sign: float = 45e-6
    ds_verify: float = 110e-6
    mac_sign: float = 3e-6
    mac_verify: float = 3e-6
    hash_per_kb: float = 1.5e-6
    threshold_combine: float = 180e-6
    threshold_verify: float = 250e-6

    def hash_cost(self, size_bytes: int) -> float:
        """Cost of hashing a message of ``size_bytes``."""
        return self.hash_per_kb * max(1.0, size_bytes / 1024.0)

    def certificate_verify_cost(self, signatures: int, threshold: bool = False) -> float:
        """Cost of verifying a commit certificate.

        A plain certificate requires verifying every one of its ``signatures``
        digital signatures; a threshold certificate verifies in constant time.
        """
        if threshold:
            return self.threshold_verify
        return self.ds_verify * max(0, signatures)

    def scaled(self, factor: float) -> "CryptoCostModel":
        """Return a copy with every cost multiplied by ``factor``.

        Used to model slower edge hardware (the computing-power experiment
        varies cores, not clock speed, but tests use this to exercise the
        model).
        """
        return CryptoCostModel(
            ds_sign=self.ds_sign * factor,
            ds_verify=self.ds_verify * factor,
            mac_sign=self.mac_sign * factor,
            mac_verify=self.mac_verify * factor,
            hash_per_kb=self.hash_per_kb * factor,
            threshold_combine=self.threshold_combine * factor,
            threshold_verify=self.threshold_verify * factor,
        )
