"""Key management.

Each component (client, shim node, executor, verifier) owns a key pair.  The
public key is world-readable; the private key never leaves the
:class:`KeyStore`, which is how the simulation enforces the paper's
assumption that "byzantine components can neither impersonate honest
components, nor subvert cryptographic constructs".
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict

from repro.errors import CryptoError


@dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric key pair.

    The private key is a random-looking secret derived from the identity and
    a deployment seed; the public key is a one-way commitment to it.  This is
    obviously not a real cryptosystem — it only has to be unforgeable *within
    the simulation*, where the only way to produce a signature is via
    :class:`repro.crypto.signatures.SignatureService`, which requires the
    private key held by the key store.
    """

    owner: str
    public_key: str
    private_key: str


def generate_keypair(owner: str, deployment_secret: str) -> KeyPair:
    """Deterministically generate the key pair of ``owner``.

    Uses the one-shot C ``hmac.digest`` (same bytes as ``hmac.new(...)``):
    every spawned executor derives a fresh key pair, so this is on the
    spawn path.
    """
    private = hmac.digest(
        deployment_secret.encode("utf-8"), f"priv:{owner}".encode("utf-8"), "sha256"
    ).hex()
    public = hashlib.sha256(f"pub:{private}".encode("utf-8")).hexdigest()
    return KeyPair(owner=owner, public_key=public, private_key=private)


class KeyStore:
    """Registry of key pairs and pairwise MAC secrets for one deployment."""

    def __init__(self, deployment_secret: str = "serverless-bft") -> None:
        self._deployment_secret = deployment_secret
        self._keypairs: Dict[str, KeyPair] = {}

    def create_identity(self, owner: str) -> KeyPair:
        """Create (or return the existing) key pair for ``owner``."""
        if owner not in self._keypairs:
            self._keypairs[owner] = generate_keypair(owner, self._deployment_secret)
        return self._keypairs[owner]

    def has_identity(self, owner: str) -> bool:
        return owner in self._keypairs

    def public_key(self, owner: str) -> str:
        try:
            return self._keypairs[owner].public_key
        except KeyError:
            raise CryptoError(f"no public key registered for {owner!r}")

    def private_key(self, owner: str) -> str:
        """Return the private key of ``owner``.

        Only the owner's own :class:`SignatureService` should call this; the
        simulation's byzantine behaviours never do, which models the
        unforgeability assumption.
        """
        try:
            return self._keypairs[owner].private_key
        except KeyError:
            raise CryptoError(f"no private key registered for {owner!r}")

    def mac_secret(self, party_a: str, party_b: str) -> str:
        """Shared pairwise MAC secret (models the Diffie–Hellman exchange)."""
        first, second = sorted((party_a, party_b))
        return hmac.digest(
            self._deployment_secret.encode("utf-8"),
            f"mac:{first}:{second}".encode("utf-8"),
            "sha256",
        ).hex()

    def identities(self) -> Dict[str, str]:
        """Mapping of owner → public key for every registered identity."""
        return {owner: pair.public_key for owner, pair in self._keypairs.items()}
