"""Cryptography substrate.

The paper uses CryptoPP digital signatures, MACs (via Diffie–Hellman shared
keys), and SHA-based digests.  We reproduce the *interfaces and guarantees*
those primitives provide inside the simulation:

* digital signatures give non-repudiation — anyone holding the signer's
  public key can verify, and a byzantine component cannot forge a signature
  of an honest component (enforced by keeping private keys secret inside
  :class:`KeyStore`);
* MACs are cheaper but only pairwise-verifiable;
* digests are collision-resistant (SHA-256);
* threshold signatures aggregate ``2f+1`` shares into one constant-size proof.

The :class:`CryptoCostModel` charges realistic CPU time for each operation so
the MAC-vs-DS and certificate-size trade-offs discussed in the paper survive
in the performance results.
"""

from repro.crypto.hashing import cached_digest, digest, seed_cached_digest
from repro.crypto.keys import KeyPair, KeyStore
from repro.crypto.signatures import (
    CryptoBackend,
    FastCryptoBackend,
    MacAuthenticator,
    RealCryptoBackend,
    Signature,
    SignatureService,
    SignedMessage,
    resolve_backend,
)
from repro.crypto.threshold import ThresholdSignature, ThresholdSigner
from repro.crypto.costs import CryptoCostModel

__all__ = [
    "CryptoBackend",
    "CryptoCostModel",
    "FastCryptoBackend",
    "KeyPair",
    "KeyStore",
    "MacAuthenticator",
    "RealCryptoBackend",
    "Signature",
    "SignatureService",
    "SignedMessage",
    "ThresholdSignature",
    "ThresholdSigner",
    "cached_digest",
    "digest",
    "resolve_backend",
    "seed_cached_digest",
]
