"""Collision-resistant digests.

The protocol sends the digest ``Δ = H(m)`` of a client request in PREPREPARE
messages and refers to the request by digest in later phases to save space.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_bytes(value: Any) -> bytes:
    """Serialise a value deterministically for hashing and signing.

    Dictionaries are serialised with sorted keys, dataclass-like objects may
    pre-serialise themselves via a ``canonical()`` method, and anything else
    falls back to ``repr`` — which is stable for the simple value types used
    in protocol messages.
    """
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    canonical = getattr(value, "canonical", None)
    if callable(canonical):
        return canonical_bytes(canonical())
    try:
        return json.dumps(value, sort_keys=True, default=repr).encode("utf-8")
    except (TypeError, ValueError):
        return repr(value).encode("utf-8")


def digest(value: Any) -> str:
    """Return the hex SHA-256 digest of ``value`` (the paper's ``H(·)``)."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()
