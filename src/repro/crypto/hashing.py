"""Collision-resistant digests.

The protocol sends the digest ``Δ = H(m)`` of a client request in PREPREPARE
messages and refers to the request by digest in later phases to save space.

Digests dominate the simulator's CPU profile (every PBFT phase, signature,
and certificate check hashes a payload), so this module also provides a
per-object digest memo: :func:`cached_digest` computes the digest of a
message once and stores it on the instance, and every later caller — the
other replicas a broadcast delivered the *same* object to, the signature
service, the verifier — reuses it instead of re-serialising the payload.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro import kernel
from repro.perf import PERF

#: Attribute used to memoise an object's digest.  Frozen dataclasses still
#: carry a ``__dict__``, so ``object.__setattr__`` works on them; objects
#: without one (strings, tuples) simply fall back to recomputing.
_DIGEST_ATTR = "_repro_cached_digest"


def _canonicalise(value: Any) -> Any:
    """Recursively rewrite ``value`` into a deterministically ordered form.

    Used as the fallback when ``json.dumps(..., sort_keys=True)`` cannot
    serialise the value directly — most importantly for dictionaries with
    mixed-type keys, where Python's sort raises ``TypeError`` and a naive
    ``repr`` fallback would leak insertion order into the hash.  Keys are
    ordered by their own canonical byte form, so two logically equal dicts
    always hash identically regardless of construction order.
    """
    if isinstance(value, dict):
        items = [
            (
                f"{type(key).__name__}:{canonical_bytes(key).decode('utf-8', 'surrogateescape')}",
                _canonicalise(val),
            )
            for key, val in value.items()
        ]
        items.sort(key=lambda item: item[0])
        return [[key, val] for key, val in items]
    if isinstance(value, (list, tuple)):
        return [_canonicalise(item) for item in value]
    if isinstance(value, (set, frozenset)):
        members = [(canonical_bytes(item), _canonicalise(item)) for item in value]
        members.sort(key=lambda member: member[0])
        return [member for _key, member in members]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_bytes(value: Any) -> bytes:
    """Serialise a value deterministically for hashing and signing.

    Dictionaries are serialised with sorted keys, dataclass-like objects may
    pre-serialise themselves via a ``canonical()`` method, and anything else
    is canonicalised explicitly (deterministic key ordering even for
    mixed-type dict keys) before being serialised.
    """
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    canonical = getattr(value, "canonical", None)
    if callable(canonical):
        return canonical_bytes(canonical())
    return _canonical_json_fallback(value)


def _canonical_json_fallback(value: Any) -> bytes:
    """The JSON leg of :func:`canonical_bytes`.

    Split out because the compiled kernel handles the bytes/str/canonical()
    fast paths in C and delegates everything else here — one definition of
    the JSON semantics, shared by both kernel variants.
    """
    try:
        return json.dumps(value, sort_keys=True, default=repr).encode("utf-8")
    except (TypeError, ValueError):
        return json.dumps(_canonicalise(value), sort_keys=True, default=repr).encode("utf-8")


def digest(value: Any) -> str:
    """Return the hex SHA-256 digest of ``value`` (the paper's ``H(·)``)."""
    PERF.digests_computed += 1
    return hashlib.sha256(canonical_bytes(value)).hexdigest()


def cached_digest(value: Any) -> str:
    """Return ``digest(value)``, memoised on the object when possible.

    Safe only for immutable payloads (the frozen message dataclasses): the
    digest is computed at most once per instance and reused by every later
    sign/verify/certificate check.  A message's ``canonical()`` form never
    covers its own ``signature``/``mac`` field, so the memo seeded on an
    unsigned payload stays valid for the signed copy (see
    :func:`seed_cached_digest`).
    """
    memo = getattr(value, _DIGEST_ATTR, None)
    if memo is not None:
        PERF.digest_cache_hits += 1
        return memo
    computed = digest(value)
    try:
        object.__setattr__(value, _DIGEST_ATTR, computed)
    except (AttributeError, TypeError):
        pass  # str / tuple / slotted payloads cannot carry the memo
    return computed


# --------------------------------------------------------------------------
# Kernel wiring (see repro.kernel; KER006 keeps repro._ckernel out of here).
# The pure-Python definitions above stay authoritative; when the compiled
# kernel is active the three public entry points are rebound to its
# bit-identical C implementations, with the JSON leg and the digest memo
# attribute registered so the C path round-trips through the same fallback.
kernel.configure_hashing(_canonical_json_fallback, _DIGEST_ATTR)
if kernel.active_variant() == "c":
    canonical_bytes = kernel.c_canonical_bytes()  # type: ignore[assignment, misc]  # noqa: F811
    digest = kernel.c_digest()  # type: ignore[assignment, misc]  # noqa: F811
    cached_digest = kernel.c_cached_digest()  # type: ignore[assignment, misc]  # noqa: F811


def seed_cached_digest(value: Any, known_digest: str) -> None:
    """Pre-populate the digest memo of ``value`` with an already-known digest.

    Used after attaching a signature to an unsigned payload: the signed copy
    is a new object, but its canonical form (and therefore digest) is the
    same, so recomputation would be pure waste.
    """
    try:
        object.__setattr__(value, _DIGEST_ATTR, known_digest)
    except (AttributeError, TypeError):
        pass
