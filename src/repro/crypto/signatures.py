"""Digital signatures and MACs.

``⟨m⟩_R`` in the paper denotes message ``m`` signed with the digital
signature of component ``R``; a message without an explicit signer uses a
MAC.  Digital signatures provide non-repudiation (third parties can verify
them), MACs are only verifiable by the two parties sharing the secret but
are roughly an order of magnitude cheaper — the cost model preserves that
ratio.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.hashing import canonical_bytes, digest
from repro.crypto.keys import KeyStore
from repro.errors import CryptoError


@dataclass(frozen=True)
class Signature:
    """A digital signature over a message digest."""

    signer: str
    message_digest: str
    value: str

    def canonical(self) -> str:
        return f"sig:{self.signer}:{self.message_digest}:{self.value}"


@dataclass(frozen=True)
class SignedMessage:
    """A payload together with the digital signature of its signer."""

    payload: Any
    signature: Signature

    @property
    def signer(self) -> str:
        return self.signature.signer


class SignatureService:
    """Per-component signing facade bound to one identity.

    Each simulated component gets its own service instance so that the only
    way to sign as ``R`` is to hold the service created for ``R``.
    """

    def __init__(self, keystore: KeyStore, owner: str) -> None:
        keystore.create_identity(owner)
        self._keystore = keystore
        self._owner = owner

    @property
    def owner(self) -> str:
        return self._owner

    def sign(self, payload: Any) -> Signature:
        """Produce a digital signature of ``payload``."""
        message_digest = digest(payload)
        private_key = self._keystore.private_key(self._owner)
        value = hmac.new(
            private_key.encode("utf-8"), message_digest.encode("utf-8"), hashlib.sha256
        ).hexdigest()
        return Signature(signer=self._owner, message_digest=message_digest, value=value)

    def sign_message(self, payload: Any) -> SignedMessage:
        """Return ``⟨payload⟩_owner``."""
        return SignedMessage(payload=payload, signature=self.sign(payload))

    def verify(self, payload: Any, signature: Signature) -> bool:
        """Verify a signature produced by *any* identity in the key store."""
        if digest(payload) != signature.message_digest:
            return False
        if not self._keystore.has_identity(signature.signer):
            return False
        private_key = self._keystore.private_key(signature.signer)
        expected = hmac.new(
            private_key.encode("utf-8"),
            signature.message_digest.encode("utf-8"),
            hashlib.sha256,
        ).hexdigest()
        return hmac.compare_digest(expected, signature.value)

    def verify_message(self, message: SignedMessage) -> bool:
        return self.verify(message.payload, message.signature)

    def require_valid(self, message: SignedMessage) -> None:
        """Raise :class:`CryptoError` unless ``message`` carries a valid signature."""
        if not self.verify_message(message):
            raise CryptoError(
                f"invalid signature from {message.signature.signer!r} "
                f"on digest {message.signature.message_digest[:12]}…"
            )


class MacAuthenticator:
    """Pairwise message authentication codes."""

    def __init__(self, keystore: KeyStore, owner: str) -> None:
        self._keystore = keystore
        self._owner = owner

    @property
    def owner(self) -> str:
        return self._owner

    def tag(self, payload: Any, peer: str) -> str:
        """MAC ``payload`` for the channel between this owner and ``peer``."""
        secret = self._keystore.mac_secret(self._owner, peer)
        return hmac.new(secret.encode("utf-8"), canonical_bytes(payload), hashlib.sha256).hexdigest()

    def verify(self, payload: Any, peer: str, tag: Optional[str]) -> bool:
        """Check a MAC received from ``peer``."""
        if not tag:
            return False
        expected = self.tag(payload, peer)
        return hmac.compare_digest(expected, tag)
