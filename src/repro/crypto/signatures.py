"""Digital signatures and MACs.

``⟨m⟩_R`` in the paper denotes message ``m`` signed with the digital
signature of component ``R``; a message without an explicit signer uses a
MAC.  Digital signatures provide non-repudiation (third parties can verify
them), MACs are only verifiable by the two parties sharing the secret but
are roughly an order of magnitude cheaper — the cost model preserves that
ratio.

Two crypto backends are available:

* :class:`RealCryptoBackend` (default) — HMAC-SHA256 over the payload
  digest.  Byzantine tests rely on it: a forged signature fails real
  verification.
* :class:`FastCryptoBackend` — a deterministic token derived from the same
  private key and digest by cheap string slicing.  Producing a valid token
  still requires the private key (held only by the key store), so it stays
  unforgeable *within the simulation*, and the calibrated CPU cost model is
  charged identically — only the host's wall-clock cost changes.  Selected
  with ``ProtocolConfig(crypto_backend="fast")``.

Both backends sign/verify the payload's *digest*, which
:func:`repro.crypto.hashing.cached_digest` memoises per message object, so a
broadcast message is serialised and hashed once no matter how many replicas
verify it.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.hashing import cached_digest, canonical_bytes
from repro.crypto.keys import KeyStore
from repro.errors import CryptoError


class CryptoBackend:
    """Strategy turning (private key, message digest) into a signature value."""

    name = "abstract"

    def signature_value(self, private_key: str, message_digest: str) -> str:  # pragma: no cover
        raise NotImplementedError

    def matches(self, private_key: str, message_digest: str, value: str) -> bool:
        expected = self.signature_value(private_key, message_digest)
        return hmac.compare_digest(expected, value)


class RealCryptoBackend(CryptoBackend):
    """HMAC-SHA256 signatures (the default; required by byzantine tests)."""

    name = "real"

    def signature_value(self, private_key: str, message_digest: str) -> str:
        # One-shot C implementation (hmac.digest) — same MAC bytes as
        # hmac.new(...).hexdigest(), several Python frames cheaper, and this
        # runs once per sign/verify on the hot path.
        return hmac.digest(
            private_key.encode("utf-8"), message_digest.encode("utf-8"), "sha256"
        ).hex()


class FastCryptoBackend(CryptoBackend):
    """Deterministic token scheme replacing real HMAC on the hot path.

    The token concatenates slices of the private key and the digest: not a
    cryptographic construct, but forging it requires the private key string,
    which only the key store hands out — the same unforgeability model the
    simulated key pairs already rely on.  Simulated CPU costs are unchanged
    (the cost model is charged per operation regardless of backend), so
    simulated-time results are bit-identical to the real backend.
    """

    name = "fast"

    def signature_value(self, private_key: str, message_digest: str) -> str:
        return f"fast:{private_key[:16]}:{message_digest[:24]}"

    def matches(self, private_key: str, message_digest: str, value: str) -> bool:
        # Tokens are not secret-derived hashes, so plain comparison suffices.
        return value == self.signature_value(private_key, message_digest)


_BACKENDS = {"real": RealCryptoBackend(), "fast": FastCryptoBackend()}


def resolve_backend(backend: Optional[object]) -> CryptoBackend:
    """Accept a backend instance, a name ("real"/"fast"), or None (real)."""
    if backend is None:
        return _BACKENDS["real"]
    if isinstance(backend, CryptoBackend):
        return backend
    try:
        return _BACKENDS[str(backend)]
    except KeyError:
        raise CryptoError(f"unknown crypto backend {backend!r}")


@dataclass(frozen=True)
class Signature:
    """A digital signature over a message digest."""

    signer: str
    message_digest: str
    value: str

    def canonical(self) -> str:
        return f"sig:{self.signer}:{self.message_digest}:{self.value}"


@dataclass(frozen=True)
class SignedMessage:
    """A payload together with the digital signature of its signer."""

    payload: Any
    signature: Signature

    @property
    def signer(self) -> str:
        return self.signature.signer


class SignatureService:
    """Per-component signing facade bound to one identity.

    Each simulated component gets its own service instance so that the only
    way to sign as ``R`` is to hold the service created for ``R``.
    """

    def __init__(self, keystore: KeyStore, owner: str, backend: Optional[object] = None) -> None:
        keystore.create_identity(owner)
        self._keystore = keystore
        self._owner = owner
        self._backend = resolve_backend(backend)
        self._private_key = keystore.private_key(owner)

    @property
    def owner(self) -> str:
        return self._owner

    @property
    def backend(self) -> CryptoBackend:
        return self._backend

    def sign(self, payload: Any) -> Signature:
        """Produce a digital signature of ``payload``."""
        return self.sign_digest(cached_digest(payload))

    def sign_digest(self, message_digest: str) -> Signature:
        """Sign an already-computed payload digest (the hot-path entry point)."""
        value = self._backend.signature_value(self._private_key, message_digest)
        return Signature(signer=self._owner, message_digest=message_digest, value=value)

    def sign_message(self, payload: Any) -> SignedMessage:
        """Return ``⟨payload⟩_owner``."""
        return SignedMessage(payload=payload, signature=self.sign(payload))

    def verify(self, payload: Any, signature: Signature) -> bool:
        """Verify a signature produced by *any* identity in the key store.

        When ``payload`` is a frozen message object, its digest is memoised
        (:func:`cached_digest`), so re-verification of a broadcast message —
        or of a message whose digest was already computed at signing time —
        skips the serialise-and-hash entirely.
        """
        if cached_digest(payload) != signature.message_digest:
            return False
        return self.verify_digest(signature.message_digest, signature)

    def verify_digest(self, message_digest: str, signature: Signature) -> bool:
        """Verify a signature against an already-computed payload digest."""
        if message_digest != signature.message_digest:
            return False
        if not self._keystore.has_identity(signature.signer):
            return False
        private_key = self._keystore.private_key(signature.signer)
        return self._backend.matches(private_key, signature.message_digest, signature.value)

    def verify_message(self, message: SignedMessage) -> bool:
        return self.verify(message.payload, message.signature)

    def require_valid(self, message: SignedMessage) -> None:
        """Raise :class:`CryptoError` unless ``message`` carries a valid signature."""
        if not self.verify_message(message):
            raise CryptoError(
                f"invalid signature from {message.signature.signer!r} "
                f"on digest {message.signature.message_digest[:12]}…"
            )


class MacAuthenticator:
    """Pairwise message authentication codes."""

    def __init__(self, keystore: KeyStore, owner: str, backend: Optional[object] = None) -> None:
        self._keystore = keystore
        self._owner = owner
        self._backend = resolve_backend(backend)

    @property
    def owner(self) -> str:
        return self._owner

    def tag(self, payload: Any, peer: str) -> str:
        """MAC ``payload`` for the channel between this owner and ``peer``."""
        secret = self._keystore.mac_secret(self._owner, peer)
        if isinstance(self._backend, FastCryptoBackend):
            return self._backend.signature_value(secret, cached_digest(payload))
        return hmac.digest(secret.encode("utf-8"), canonical_bytes(payload), "sha256").hex()

    def verify(self, payload: Any, peer: str, tag: Optional[str]) -> bool:
        """Check a MAC received from ``peer``."""
        if not tag:
            return False
        expected = self.tag(payload, peer)
        return hmac.compare_digest(expected, tag)
