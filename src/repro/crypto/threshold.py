"""Threshold signatures.

The paper notes (Section IV-C, Remark) that the commit certificate carried in
EXECUTE messages — ``2f_R + 1`` individual COMMIT signatures — can be
compressed into a single constant-size threshold signature, as done by linear
BFT protocols such as SBFT and PoE.  This module provides that primitive so
the certificate-size ablation is expressible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable

from repro.crypto.hashing import digest
from repro.crypto.signatures import Signature
from repro.errors import CryptoError


@dataclass(frozen=True)
class ThresholdSignature:
    """An aggregate proof that ``threshold`` distinct signers signed a digest."""

    message_digest: str
    threshold: int
    signers: FrozenSet[str]
    value: str

    @property
    def size_bytes(self) -> int:
        """Constant wire size regardless of how many shares were aggregated."""
        return 96


class ThresholdSigner:
    """Aggregates individual signature shares into a threshold signature."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise CryptoError("threshold must be positive")
        self._threshold = threshold

    @property
    def threshold(self) -> int:
        return self._threshold

    def aggregate(self, signatures: Iterable[Signature]) -> ThresholdSignature:
        """Combine at least ``threshold`` shares over the same digest."""
        shares = list(signatures)
        if not shares:
            raise CryptoError("cannot aggregate an empty set of signature shares")
        message_digest = shares[0].message_digest
        signers: Dict[str, Signature] = {}
        for share in shares:
            if share.message_digest != message_digest:
                raise CryptoError("signature shares cover different digests")
            signers[share.signer] = share
        if len(signers) < self._threshold:
            raise CryptoError(
                f"need {self._threshold} distinct shares, got {len(signers)}"
            )
        material = "|".join(
            f"{signer}:{signers[signer].value}" for signer in sorted(signers)
        )
        value = hashlib.sha256(f"{message_digest}|{material}".encode("utf-8")).hexdigest()
        return ThresholdSignature(
            message_digest=message_digest,
            threshold=self._threshold,
            signers=frozenset(signers),
            value=value,
        )

    def verify(self, payload: Any, aggregate: ThresholdSignature) -> bool:
        """Check that the aggregate covers ``payload`` and enough signers."""
        if aggregate.threshold != self._threshold:
            return False
        if len(aggregate.signers) < self._threshold:
            return False
        return digest(payload) == aggregate.message_digest
