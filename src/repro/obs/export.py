"""Schema-versioned JSONL export of an observability payload.

A payload (the ``obs`` dict attached to a traced
:class:`~repro.core.runner.SimulationResult`) flattens to one JSONL record
per line: a header first, then metrics, per-phase summaries, spans, and
trace events.  The header carries the schema version and the explicit drop
counts of both bounded collectors (span ring buffer, tracer capacity), so a
reader always knows whether — and how much — the trace was truncated.

``records_to_payload`` inverts ``payload_to_records`` exactly, and
``validate_records`` checks structure without simulating anything — the
``python -m repro.obs validate`` command and the CI ``obs-smoke`` job are
thin wrappers around it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional

#: Bump when the record layout changes incompatibly.
OBS_SCHEMA_VERSION = 1

#: Every record type a JSONL export may contain.
RECORD_TYPES = ("header", "metric", "phase", "span", "event")

#: Required keys per record type (beyond ``record`` itself).
_REQUIRED_KEYS = {
    "header": ("schema", "spans", "spans_open", "spans_dropped", "events", "trace_dropped"),
    "metric": ("kind", "name"),
    "phase": ("name", "summary"),
    "span": ("name", "key", "actor", "start", "end"),
    "event": ("time", "category", "actor", "details"),
}

_SUMMARY_KEYS = ("count", "mean", "p50", "p95", "p99", "minimum", "maximum")


def payload_to_records(payload: Mapping[str, object]) -> List[Dict[str, object]]:
    """Flatten an obs payload into its JSONL record sequence (header first)."""
    metrics = payload.get("metrics", {})
    phases = payload.get("phases", {})
    spans = payload.get("spans", [])
    trace = payload.get("trace", {})
    events = trace.get("events", [])  # type: ignore[union-attr]
    records: List[Dict[str, object]] = [
        {
            "record": "header",
            "schema": payload.get("schema", OBS_SCHEMA_VERSION),
            "spans": len(spans),  # type: ignore[arg-type]
            "spans_open": payload.get("spans_open", 0),
            "spans_dropped": payload.get("spans_dropped", 0),
            "events": len(events),  # type: ignore[arg-type]
            "trace_dropped": trace.get("dropped", 0),  # type: ignore[union-attr]
        }
    ]
    for kind in ("counters", "gauges"):
        for name, value in metrics.get(kind, {}).items():  # type: ignore[union-attr]
            records.append(
                {"record": "metric", "kind": kind[:-1], "name": name, "value": value}
            )
    for name, summary in metrics.get("histograms", {}).items():  # type: ignore[union-attr]
        records.append(
            {"record": "metric", "kind": "histogram", "name": name, "summary": dict(summary)}
        )
    for name, summary in phases.items():  # type: ignore[union-attr]
        records.append({"record": "phase", "name": name, "summary": dict(summary)})
    for span in spans:  # type: ignore[union-attr]
        records.append({"record": "span", **dict(span)})
    for event in events:  # type: ignore[union-attr]
        records.append({"record": "event", **dict(event)})
    return records


def records_to_payload(records: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Rebuild the payload dict from its record sequence (exact inverse)."""
    payload: Dict[str, object] = {
        "schema": OBS_SCHEMA_VERSION,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "phases": {},
        "spans": [],
        "spans_open": 0,
        "spans_dropped": 0,
        "trace": {"events": [], "dropped": 0},
    }
    metrics: Dict[str, Dict[str, object]] = payload["metrics"]  # type: ignore[assignment]
    for record in records:
        kind = record.get("record")
        if kind == "header":
            payload["schema"] = record["schema"]
            payload["spans_open"] = record["spans_open"]
            payload["spans_dropped"] = record["spans_dropped"]
            payload["trace"]["dropped"] = record["trace_dropped"]  # type: ignore[index]
        elif kind == "metric":
            metric_kind = record["kind"]
            if metric_kind == "histogram":
                metrics["histograms"][record["name"]] = dict(record["summary"])  # type: ignore[index,arg-type,call-overload]
            else:
                metrics[f"{metric_kind}s"][record["name"]] = record["value"]  # type: ignore[index,call-overload]
        elif kind == "phase":
            payload["phases"][record["name"]] = dict(record["summary"])  # type: ignore[index,arg-type,call-overload]
        elif kind == "span":
            payload["spans"].append(  # type: ignore[union-attr]
                {key: record[key] for key in _REQUIRED_KEYS["span"]}
            )
        elif kind == "event":
            payload["trace"]["events"].append(  # type: ignore[index]
                {key: record[key] for key in _REQUIRED_KEYS["event"]}
            )
    return payload


def validate_records(records: Iterable[Mapping[str, object]]) -> List[str]:
    """Structural validation; returns human-readable problems (empty = valid)."""
    errors: List[str] = []
    header: Optional[Mapping[str, object]] = None
    counts = {"span": 0, "event": 0}
    for index, record in enumerate(records):
        kind = record.get("record")
        if kind not in RECORD_TYPES:
            errors.append(f"record {index}: unknown record type {kind!r}")
            continue
        missing = [key for key in _REQUIRED_KEYS[kind] if key not in record]
        if missing:
            errors.append(f"record {index} ({kind}): missing keys {missing}")
            continue
        if kind == "header":
            if index != 0:
                errors.append(f"record {index}: header must be the first record")
            header = record
            if record["schema"] != OBS_SCHEMA_VERSION:
                errors.append(
                    f"record {index}: schema {record['schema']!r} != "
                    f"supported {OBS_SCHEMA_VERSION}"
                )
        elif kind in counts:
            counts[kind] += 1
        if kind in ("phase", "metric") and "summary" in record:
            summary = record["summary"]
            if not isinstance(summary, Mapping) or any(
                key not in summary for key in _SUMMARY_KEYS
            ):
                errors.append(f"record {index} ({kind}): malformed summary")
    if header is None:
        errors.append("no header record")
    else:
        for key, count in (("spans", counts["span"]), ("events", counts["event"])):
            if header[key] != count:
                errors.append(
                    f"header declares {header[key]} {key}, found {count}"
                )
    return errors


def write_jsonl(payload: Mapping[str, object], path: str) -> int:
    """Write the payload's records to ``path``; returns the record count.

    Parent directories are created on demand, like the sweep result store.
    """
    records = payload_to_records(payload)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Read a JSONL export back into its record list."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
