"""The per-run observability context.

One :class:`ObsContext` per deployment replaces the scattered fragments
observability used to live in: the in-memory :class:`~repro.sim.tracing.Tracer`,
the process-global :data:`repro.perf.PERF` counters (absorbed as a per-run
snapshot/delta), and the watchdog's loose ``result.extra`` keys (mirrored as
``fault.*`` gauges).  The simulation constructs it once, threads it to
components the same way the tracer is threaded — ``None`` when disabled, so
a disabled run pays zero per-event cost — and collects everything into one
JSON-able payload at the end of the run.

The payload is attached to ``SimulationResult.obs``, which is a *host-side*
field: it is excluded from ``simulated_fingerprint`` exactly like
``wall_clock_seconds``, so observability on/off can never change a result
digest (the A/B suite in ``tests/test_obs.py`` enforces this across all
four systems).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional

from repro.obs.export import OBS_SCHEMA_VERSION
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import DEFAULT_SPAN_CAPACITY, SpanLog
from repro.perf import PERF
from repro.sim.stats import LatencyRecorder
from repro.sim.tracing import Tracer

#: Default bound on retained trace events per run (the tracer counts what
#: it drops past this — see the exported header's ``trace_dropped``).
DEFAULT_TRACE_CAPACITY = 250_000

#: Span names of the commit path, in pipeline order (used by the CLI and
#: report layer to order phase columns deterministically).
COMMIT_PHASES = ("request", "consensus", "spawn", "execute", "verify", "commit")

#: Fault-path span names (present only in runs that exercised them).
FAULT_PHASES = ("view_change", "recovery")


class ObsContext:
    """Owns the tracer, span log, and metrics registry of one run."""

    def __init__(
        self,
        enabled: bool,
        trace_capacity: Optional[int] = DEFAULT_TRACE_CAPACITY,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
    ) -> None:
        self.enabled = bool(enabled)
        self.tracer = Tracer(enabled=self.enabled, capacity=trace_capacity)
        self.spans = SpanLog(capacity=span_capacity)
        self.metrics = MetricsRegistry()
        self._perf_baseline: Optional[Dict[str, int]] = None

    def component(self) -> Optional["ObsContext"]:
        """What components receive: ``self`` when enabled, else ``None``.

        The same pattern the tracer uses — a component guards every
        emission with ``if self._obs is not None``, so a disabled run has
        no per-event branch beyond that single None test it already pays
        for the tracer.
        """
        return self if self.enabled else None

    # ------------------------------------------------------------------ spans

    def begin_span(self, name: str, key: Hashable, time: float, actor: str) -> None:
        self.spans.begin(name, key, time, actor)

    def end_span(self, name: str, key: Hashable, time: float) -> None:
        self.spans.end(name, key, time)

    # ------------------------------------------------------------------ perf

    def on_run_start(self) -> None:
        """Snapshot the process-global PERF counters at the start of a run.

        Per-run discipline: the payload reports the *delta* over this
        baseline, so back-to-back runs (and pool workers that reuse a warm
        process) report their own work, never process-lifetime totals.
        """
        self._perf_baseline = PERF.snapshot()

    def perf_delta(self) -> Dict[str, int]:
        return PERF.delta_since(self._perf_baseline or {})

    # ------------------------------------------------------------------ collect

    def finalize(
        self, duration: float, extra: Optional[Mapping[str, float]] = None
    ) -> Dict[str, object]:
        """Assemble the run's JSON-able observability payload."""
        self.metrics.absorb_counters("perf", self.perf_delta())
        if extra:
            self.metrics.absorb_gauges("fault", extra)
        self.metrics.gauge("run.duration", float(duration))

        phases: Dict[str, Dict[str, float]] = {}
        durations = self.spans.durations_by_name()
        ordered = [name for name in COMMIT_PHASES + FAULT_PHASES if name in durations]
        ordered += sorted(name for name in durations if name not in ordered)
        for name in ordered:
            recorder = LatencyRecorder(warmup=0.0)
            for value in durations[name]:
                recorder.record_value(value)
            summary = recorder.summary()
            phases[name] = {
                "count": summary.count,
                "mean": summary.mean,
                "p50": summary.p50,
                "p95": summary.p95,
                "p99": summary.p99,
                "minimum": summary.minimum,
                "maximum": summary.maximum,
            }

        events: List[Dict[str, object]] = [
            {
                "time": event.time,
                "category": event.category,
                "actor": event.actor,
                "details": dict(event.details),
            }
            for event in self.tracer
        ]
        return {
            "schema": OBS_SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
            "phases": phases,
            "spans": [span.to_dict() for span in self.spans.spans()],
            "spans_open": self.spans.open_count,
            "spans_dropped": self.spans.dropped,
            "trace": {"events": events, "dropped": self.tracer.dropped},
        }
