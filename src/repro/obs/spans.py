"""Virtual-time spans for the commit path.

A span is one phase of a request's life — ``request`` (client send to
client completion), ``consensus`` (propose to commit), ``spawn`` (spawn
decision to executor start), ``execute`` (executor start to VERIFY sent),
``verify`` (first VERIFY received to validation), ``commit`` (validation to
the shim's verified notice), plus ``view_change`` and ``recovery`` for the
fault path — measured in *simulated* seconds, so the decomposition lines up
with the analytical cost model in :mod:`repro.perfmodel` rather than with
host speed.

Components emit begin/end marks through the per-run
:class:`~repro.obs.context.ObsContext`; the log deduplicates them with
first-begin-wins / first-end-wins semantics keyed on ``(name, key)``.  That
matters because several actors legitimately touch the same phase of the
same sequence number (3f+1 replicas commit, 3f_E+1 executors execute): the
earliest mark is the phase boundary, everything later is a duplicate.

The log is bounded: completed spans live in a ring buffer that evicts the
oldest once ``capacity`` is reached, counting evictions in :attr:`dropped`
— long traced runs degrade gracefully instead of growing without bound,
and the exported header says exactly how much was lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple

#: Default bound on retained *completed* spans per run.
DEFAULT_SPAN_CAPACITY = 65_536


@dataclass
class Span:
    """One phase of one request/sequence number, in virtual time."""

    name: str
    key: Hashable
    actor: str
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        """Virtual seconds from begin to end; None while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "key": self.key,
            "actor": self.actor,
            "start": self.start,
            "end": self.end,
        }


class SpanLog:
    """Collects spans with first-begin-wins / first-end-wins dedup."""

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        self._capacity = max(1, capacity)
        self._open: Dict[Tuple[str, Hashable], Span] = {}
        self._seen: Set[Tuple[str, Hashable]] = set()
        self._closed: Deque[Span] = deque()
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Completed spans evicted by the ring buffer's capacity bound."""
        return self._dropped

    @property
    def open_count(self) -> int:
        return len(self._open)

    @property
    def closed_count(self) -> int:
        return len(self._closed)

    def begin(self, name: str, key: Hashable, time: float, actor: str) -> None:
        """Open the ``(name, key)`` span; later begins for it are duplicates."""
        ident = (name, key)
        if ident in self._seen:
            return
        self._seen.add(ident)
        self._open[ident] = Span(name=name, key=key, actor=actor, start=time)

    def end(self, name: str, key: Hashable, time: float) -> None:
        """Close the span; later ends (other replicas/executors) are ignored."""
        span = self._open.pop((name, key), None)
        if span is None:
            return
        span.end = time
        if len(self._closed) >= self._capacity:
            self._closed.popleft()
            self._dropped += 1
        self._closed.append(span)

    def spans(self) -> List[Span]:
        """Completed spans in completion order, then still-open ones.

        Completion order is an event-loop order, hence deterministic for a
        deterministic simulation; open spans (phases cut off by the end of
        the run) sort by their begin time for the same reason.
        """
        remaining = sorted(
            self._open.values(), key=lambda span: (span.start, span.name, str(span.key))
        )
        return list(self._closed) + remaining

    def durations_by_name(self) -> Dict[str, List[float]]:
        """Completed-span durations grouped by span name (phase)."""
        grouped: Dict[str, List[float]] = {}
        for span in self._closed:
            grouped.setdefault(span.name, []).append(span.end - span.start)  # type: ignore[operator]
        return grouped
