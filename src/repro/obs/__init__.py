"""repro.obs — the unified per-run observability layer (flight recorder).

One :class:`~repro.obs.context.ObsContext` per run owns the trace
(:class:`~repro.sim.tracing.Tracer`), the commit-path span log
(:class:`~repro.obs.spans.SpanLog`), and the metrics registry
(:class:`~repro.obs.metrics.MetricsRegistry`); the runner collects them
into a digest-neutral JSON payload on ``SimulationResult.obs`` that
survives pool workers and the result store, exports to schema-versioned
JSONL (:mod:`repro.obs.export`), and renders through ``python -m
repro.obs`` (:mod:`repro.obs.cli`).
"""

from repro.obs.context import (
    COMMIT_PHASES,
    DEFAULT_TRACE_CAPACITY,
    FAULT_PHASES,
    ObsContext,
)
from repro.obs.export import (
    OBS_SCHEMA_VERSION,
    payload_to_records,
    read_jsonl,
    records_to_payload,
    validate_records,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import DEFAULT_SPAN_CAPACITY, Span, SpanLog

__all__ = [
    "COMMIT_PHASES",
    "DEFAULT_SPAN_CAPACITY",
    "DEFAULT_TRACE_CAPACITY",
    "FAULT_PHASES",
    "MetricsRegistry",
    "OBS_SCHEMA_VERSION",
    "ObsContext",
    "Span",
    "SpanLog",
    "payload_to_records",
    "read_jsonl",
    "records_to_payload",
    "validate_records",
    "write_jsonl",
]
