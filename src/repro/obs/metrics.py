"""Per-run metrics registry: counters, gauges, histograms.

One namespaced home for every number a run produces outside the result
dataclass: the hot-path :data:`repro.perf.PERF` counters land here as a
per-run *delta* under ``perf.*``, the fault-timeline watchdog's loose
``extra.*`` keys become ``fault.*`` gauges, and per-phase latency
decompositions become histograms backed by
:class:`repro.sim.stats.LatencyRecorder` — the same incremental
sorted-prefix percentile machinery the client latency summary uses, so a
histogram summary costs O(1) amortised per observation instead of a sort at
collect time.

The registry is per-:class:`~repro.obs.context.ObsContext`, hence per-run:
nothing here is process-global, which is what makes pool workers' metrics
safe to ship home and compare against a serial run's.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.sim.stats import LatencyRecorder


class MetricsRegistry:
    """Counters, gauges, and streaming-percentile histograms for one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyRecorder] = {}

    # ------------------------------------------------------------------ writers

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter (created at zero)."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_counter(self, name: str, value: float) -> None:
        """Set a counter outright (absorbing an externally computed delta)."""
        self._counters[name] = value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of the named gauge."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one sample to the named histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyRecorder(warmup=0.0)
        histogram.record_value(value)

    def absorb_counters(self, prefix: str, values: Mapping[str, float]) -> None:
        """Copy a mapping of counters in under ``prefix.`` namespacing."""
        for name, value in values.items():
            self._counters[f"{prefix}.{name}"] = float(value)

    def absorb_gauges(self, prefix: str, values: Mapping[str, float]) -> None:
        for name, value in values.items():
            self._gauges[f"{prefix}.{name}"] = float(value)

    # ------------------------------------------------------------------ readers

    def histogram_summary(self, name: str) -> Dict[str, float]:
        summary = self._histograms[name].summary()
        return {
            "count": summary.count,
            "mean": summary.mean,
            "p50": summary.p50,
            "p95": summary.p95,
            "p99": summary.p99,
            "minimum": summary.minimum,
            "maximum": summary.maximum,
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as plain JSON-able dicts with sorted, stable keys."""
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: self.histogram_summary(name) for name in sorted(self._histograms)
            },
        }
