"""``python -m repro.obs`` — inspect a run's flight-recorder data.

Four subcommands:

* ``summary`` — run a (default) point with observability on and print the
  per-phase latency breakdown, per-run perf-counter deltas, and drop
  counts; or summarise an existing JSONL export via ``--input``.
* ``spans`` — list individual spans (filter with ``--phase``).
* ``export`` — run a point and write the schema-versioned JSONL export.
* ``validate`` — structurally validate a JSONL export (CI's obs-smoke
  gate); exits non-zero on any problem.

Run-defining flags mirror the sweep CLI: ``--system``, repeatable
``--scenario``, ``--duration``/``--warmup``/``--seed``, and repeatable
dotted-key ``--set key=value`` overrides.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.export import (
    read_jsonl,
    records_to_payload,
    validate_records,
    write_jsonl,
)

#: Cell layout of the summary's phase table.
_PHASE_COLUMNS = ("count", "mean", "p50", "p95", "p99")


def _parse_set_overrides(pairs: List[str]) -> Dict[str, object]:
    """Repeatable ``--set key=value`` flags; values are JSON when possible."""
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ConfigurationError(f"--set expects key=value, got {pair!r}")
        try:
            value: object = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides


def _traced_payload(args: argparse.Namespace) -> Tuple[Dict[str, object], Optional[object]]:
    """The obs payload for the subcommand: from ``--input`` or a fresh run."""
    if getattr(args, "input", None):
        records = read_jsonl(args.input)
        errors = validate_records(records)
        if errors:
            raise ConfigurationError(
                f"{args.input} is not a valid obs export: {errors[0]}"
            )
        return records_to_payload(records), None
    from repro.api import RunSpec, run

    spec = RunSpec(
        system=args.system,
        scenarios=tuple(args.scenario or []),
        overrides=_parse_set_overrides(args.set or []),
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        tracer_enabled=True,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        result = run(spec)
    if result.obs is None:
        raise ConfigurationError(
            f"system {args.system!r} produced no observability payload"
        )
    return result.obs, result


def _format_float(value: float) -> str:
    return f"{value:.6f}"


def _print_phase_table(phases: Dict[str, Dict[str, float]]) -> None:
    if not phases:
        print("no completed spans (run too short or observability was off)")
        return
    width = max(len(name) for name in phases) + 2
    header = "phase".ljust(width) + "".join(
        column.rjust(12) for column in _PHASE_COLUMNS
    )
    print(header)
    for name, summary in phases.items():
        cells = []
        for column in _PHASE_COLUMNS:
            value = summary[column]
            cells.append(
                (str(int(value)) if column == "count" else _format_float(value)).rjust(12)
            )
        print(name.ljust(width) + "".join(cells))


def _cmd_summary(args: argparse.Namespace) -> int:
    payload, result = _traced_payload(args)
    if result is not None:
        print(
            f"[obs] committed={result.committed_txns} "
            f"throughput={result.throughput_txn_per_sec:.1f} txn/s "
            f"latency_mean={result.latency.mean:.4f}s"
        )
    trace = payload.get("trace", {})
    print(
        f"[obs] schema={payload.get('schema')} "
        f"spans={len(payload.get('spans', []))} "
        f"(open={payload.get('spans_open', 0)}, "
        f"dropped={payload.get('spans_dropped', 0)}) "
        f"events={len(trace.get('events', []))} "
        f"(dropped={trace.get('dropped', 0)})"
    )
    print()
    print("per-phase latency decomposition (virtual seconds):")
    _print_phase_table(payload.get("phases", {}))
    counters = payload.get("metrics", {}).get("counters", {})
    perf = {name: value for name, value in counters.items() if name.startswith("perf.")}
    if perf and not args.no_perf:
        print()
        print("per-run perf-counter deltas:")
        for name, value in perf.items():
            print(f"  {name:40s} {int(value):>12,}")
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    payload, _result = _traced_payload(args)
    spans = payload.get("spans", [])
    if args.phase:
        spans = [span for span in spans if span.get("name") == args.phase]
    shown = spans[: args.limit] if args.limit else spans
    for span in shown:
        end = span.get("end")
        duration = "open" if end is None else _format_float(end - span["start"])
        print(
            f"{span['name']:<12} key={span['key']!s:<24} actor={span['actor']:<16} "
            f"start={_format_float(span['start'])} duration={duration}"
        )
    if len(shown) < len(spans):
        print(f"... {len(spans) - len(shown)} more (raise --limit)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    payload, _result = _traced_payload(args)
    count = write_jsonl(payload, args.output)
    print(f"[obs] wrote {count} records to {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    records = read_jsonl(args.path)
    errors = validate_records(records)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(f"valid: {len(records)} records (schema {records[0]['schema']})")
    return 0


def _add_run_arguments(parser: argparse.ArgumentParser, with_input: bool) -> None:
    if with_input:
        parser.add_argument(
            "--input",
            metavar="FILE",
            help="read an existing JSONL export instead of running a point",
        )
    parser.add_argument("--system", default="serverless_bft", help="registered system name")
    parser.add_argument(
        "--scenario", action="append", metavar="NAME", help="scenario preset (repeatable)"
    )
    parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="dotted-key override, e.g. --set protocol.batch_size=25 (repeatable)",
    )
    parser.add_argument("--duration", type=float, default=2.0, help="virtual duration")
    parser.add_argument("--warmup", type=float, default=0.4, help="virtual warm-up")
    parser.add_argument("--seed", type=int, default=None, help="run seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="inspect a run's metrics/span/trace flight-recorder data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary", help="per-phase latency breakdown of a point")
    _add_run_arguments(summary, with_input=True)
    summary.add_argument(
        "--no-perf", action="store_true", help="omit the perf-counter delta section"
    )
    summary.set_defaults(func=_cmd_summary)

    spans = sub.add_parser("spans", help="list individual spans")
    _add_run_arguments(spans, with_input=True)
    spans.add_argument("--phase", help="only spans of this phase (e.g. consensus)")
    spans.add_argument("--limit", type=int, default=50, help="max spans to print (0: all)")
    spans.set_defaults(func=_cmd_spans)

    export = sub.add_parser("export", help="run a point and write the JSONL export")
    _add_run_arguments(export, with_input=False)
    export.add_argument("--output", required=True, metavar="FILE", help="JSONL output path")
    export.set_defaults(func=_cmd_export)

    validate = sub.add_parser("validate", help="validate a JSONL export's schema")
    validate.add_argument("path", help="JSONL export to check")
    validate.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ConfigurationError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
