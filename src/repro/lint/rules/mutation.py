"""MUT004 — frozen message mutation outside constructors.

Why this rule exists: :func:`repro.crypto.hashing.cached_digest` memoises a
message's digest *on the instance* the first time anything hashes it, and
every later sign/verify/certificate check — on every replica the same
object was delivered to — reuses the memo.  That is only sound if frozen
messages never change after construction.  ``@dataclass(frozen=True)``
blocks plain attribute assignment, but ``object.__setattr__`` (and raw
``__dict__`` writes) bypass it — one such write to a canonical field after
the digest memo is seeded would let a message's bytes and its cached
digest disagree, which is exactly the corruption the byzantine suites
exist to *detect*, silently introduced by honest code.

What is allowed, mirroring the codebase's sanctioned patterns:

* ``object.__setattr__`` inside ``__init__`` / ``__post_init__`` /
  ``__new__`` — frozen dataclasses have no other way to set fields during
  construction.
* ``object.__setattr__(obj, "_underscore_name", ...)`` anywhere — the
  underscore namespace is reserved for derived memos (``_sig_valid``,
  ``_repro_cached_digest``, read/write-set caches) that are pure functions
  of the canonical fields and never enter ``canonical()`` payloads.

Everything else is flagged: a public-field write outside a constructor,
a write whose attribute name cannot be resolved statically (unless the
resolved module-level constant names an underscore attribute), and any
subscript assignment to ``X.__dict__``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.rules import FileRule, RawFinding, register

_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def _module_str_constants(tree: ast.AST) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments (attr-name indirection)."""
    constants: Dict[str, str] = {}
    if isinstance(tree, ast.Module):
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                constants[stmt.targets[0].id] = stmt.value.value
    return constants


@register
class FrozenMutationRule(FileRule):
    __doc__ = __doc__

    code = "MUT004"
    summary = (
        "object.__setattr__/__dict__ write to a frozen instance outside a "
        "constructor (breaks the cached-digest memo)"
    )

    def check(self, path: str, tree: ast.AST, source: str) -> Iterator[RawFinding]:
        constants = _module_str_constants(tree)
        findings: List[RawFinding] = []
        self._walk(tree, in_constructor=False, constants=constants, findings=findings)
        return iter(findings)

    def _walk(
        self,
        node: ast.AST,
        in_constructor: bool,
        constants: Dict[str, str],
        findings: List[RawFinding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(
                    child,
                    in_constructor=child.name in _CONSTRUCTORS,
                    constants=constants,
                    findings=findings,
                )
                continue
            if isinstance(child, ast.ClassDef):
                self._walk(child, False, constants, findings)
                continue
            if isinstance(child, ast.Call):
                finding = self._check_setattr(child, in_constructor, constants)
                if finding is not None:
                    findings.append(finding)
            elif isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign) else [child.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "__dict__"
                    ):
                        findings.append(
                            RawFinding(
                                target.lineno,
                                target.col_offset,
                                "writing through __dict__ bypasses frozen-"
                                "instance protection; construct a new message "
                                "instead",
                            )
                        )
            self._walk(child, in_constructor, constants, findings)

    def _check_setattr(
        self, node: ast.Call, in_constructor: bool, constants: Dict[str, str]
    ) -> Optional[RawFinding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            return None
        if in_constructor:
            return None
        if len(node.args) >= 2:
            attr_node = node.args[1]
            attr_name: Optional[str] = None
            if isinstance(attr_node, ast.Constant) and isinstance(
                attr_node.value, str
            ):
                attr_name = attr_node.value
            elif isinstance(attr_node, ast.Name):
                attr_name = constants.get(attr_node.id)
            if attr_name is not None and attr_name.startswith("_"):
                return None  # sanctioned derived-memo namespace
            if attr_name is None:
                return RawFinding(
                    node.lineno,
                    node.col_offset,
                    "object.__setattr__ with a non-literal attribute name on "
                    "a (potentially frozen) instance outside a constructor — "
                    "cannot prove it stays in the _memo namespace",
                )
            return RawFinding(
                node.lineno,
                node.col_offset,
                f"object.__setattr__(..., {attr_name!r}, ...) mutates a "
                "canonical field outside a constructor; the cached-digest "
                "memo makes post-construction mutation unsound — build a new "
                "message instead",
            )
        return None
