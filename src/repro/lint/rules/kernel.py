"""KER006 — direct ``repro._ckernel`` import outside the kernel chooser.

Why this rule exists: the compiled kernel's entire safety story — automatic
pure-Python fallback, the ``REPRO_KERNEL`` override, the ``BUILD_TAG``
staleness gate, and the one-time fallback warning — lives in
:mod:`repro.kernel`, which decides the variant exactly once at import.  A
call-site that imports ``repro._ckernel._impl`` directly bypasses all of
it: it crashes on checkouts that never built the extension, happily loads a
stale ``.so`` whose calling convention no longer matches (the chooser's
build-tag check never runs), and ignores ``REPRO_KERNEL=py`` — so the
"pure Python is authoritative" A/B discipline in ``tests/test_kernel.py``
silently stops covering that site.  Every consumer must route through the
chooser's accessors (``kernel.c_execute_batch()`` etc.), which return
``None`` on the pure-Python path.

Flags any import of ``repro._ckernel`` or its submodules — ``import x``,
``from x import y``, ``from repro import _ckernel``, and dynamic constant
imports (``importlib.import_module("repro._ckernel._impl")``,
``__import__(...)``) — in every file except ``repro/kernel.py`` and the
``repro/_ckernel`` package itself.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator

from repro.lint.rules import FileRule, RawFinding, register

_PACKAGE = "repro._ckernel"

def _names_package(module: str) -> bool:
    return module == _PACKAGE or module.startswith(_PACKAGE + ".")


def _is_allowed(path: str) -> bool:
    """The chooser itself and anything inside the extension package."""
    normalized = os.path.normpath(path)
    if normalized.endswith(os.path.join("repro", "kernel.py")):
        return True
    return os.path.join("repro", "_ckernel") + os.sep in normalized


@register
class CKernelImportRule(FileRule):
    __doc__ = __doc__

    code = "KER006"
    summary = "direct repro._ckernel import outside the repro.kernel chooser"

    def check(self, path: str, tree: ast.AST, source: str) -> Iterator[RawFinding]:
        if _is_allowed(path):
            return iter(())
        findings = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _names_package(alias.name):
                        findings.append(self._finding(node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if _names_package(module):
                    findings.append(self._finding(node, module))
                elif module == "repro" and any(
                    alias.name == "_ckernel" for alias in node.names
                ):
                    findings.append(self._finding(node, _PACKAGE))
            elif isinstance(node, ast.Call):
                target = self._dynamic_import_target(node)
                if target is not None and _names_package(target):
                    findings.append(self._finding(node, target))
        return iter(findings)

    @staticmethod
    def _dynamic_import_target(call: ast.Call) -> "str | None":
        """The module name of an ``import_module``/``__import__`` call with a
        constant first argument, else ``None``."""
        func = call.func
        is_dynamic_import = (
            isinstance(func, ast.Name) and func.id == "__import__"
        ) or (isinstance(func, ast.Attribute) and func.attr == "import_module")
        if not is_dynamic_import or not call.args:
            return None
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        return None

    def _finding(self, node: ast.AST, module: str) -> RawFinding:
        return RawFinding(
            node.lineno,
            node.col_offset,
            f"direct import of `{module}` — route through `repro.kernel` "
            "(the chooser owns fallback, REPRO_KERNEL, and the build-tag "
            "gate; see its accessors like `kernel.c_execute_batch()`)",
        )
