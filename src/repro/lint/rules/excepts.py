"""EXC005 — bare ``except`` and silent broad-exception swallows.

Why this rule exists: sweep workers, warm pools, and the result store are
the paths where an exception is most likely to be *someone else's* crash —
a worker process dying mid-point, a torn JSONL line, a broken pool
poisoning every pending future.  A ``try: ... except Exception: pass``
in those paths converts worker death into silently missing results: the
sweep reports success, the store has a hole, and the replicate statistics
quietly average over fewer seeds than they claim.  (PR 6 added explicit
worker-death retry precisely because these failures must be *handled*,
not swallowed.)

Two shapes are flagged everywhere:

* ``except:`` — bare excepts also catch ``KeyboardInterrupt`` /
  ``SystemExit``, turning Ctrl-C into an infinite loop in drain/retry
  code.  Catch ``Exception`` at the very most, and name the reason.
* ``except Exception:`` / ``except BaseException:`` whose body is only
  ``pass`` / ``continue`` / ``...`` — a silent swallow.  Handle the error:
  log it, record it on the outcome, re-raise a typed error, or narrow the
  except to the exception type you actually expect (and say why in a
  comment).

Broad handlers that *do something* — record the failure on a
``PointOutcome``, log and fall back — are accepted: at a process boundary
the exception type genuinely is arbitrary.  The rule is about silence,
not breadth.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.rules import FileRule, RawFinding, register

_BROAD = frozenset({"Exception", "BaseException"})


def _names(exc_type: ast.expr | None) -> List[str]:
    if exc_type is None:
        return []
    if isinstance(exc_type, ast.Name):
        return [exc_type.id]
    if isinstance(exc_type, ast.Tuple):
        return [elt.id for elt in exc_type.elts if isinstance(elt, ast.Name)]
    return []


def _is_silent(body: List[ast.stmt]) -> bool:
    """True when the handler body neither handles nor reports anything."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@register
class ExceptionSwallowRule(FileRule):
    __doc__ = __doc__

    code = "EXC005"
    summary = "bare except / silent `except Exception: pass` swallow"

    def check(self, path: str, tree: ast.AST, source: str) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "bare `except:` also catches KeyboardInterrupt/SystemExit; "
                    "catch Exception at most, and handle or log it",
                )
                continue
            if any(name in _BROAD for name in _names(node.type)) and _is_silent(
                node.body
            ):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "`except Exception`-and-continue swallows failures "
                    "silently (worker death becomes a missing result); log "
                    "it, record it, or narrow to the expected exception type",
                )
