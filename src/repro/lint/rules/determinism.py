"""DET001 — nondeterminism sources in simulation/consensus/crypto/sweep code.

Why this rule exists: PR 2 shipped a latent cross-process nondeterminism
bug — ``DecentralizedSpawnPolicy`` staggered region choice with the builtin
``hash()``, which is randomised per process (``PYTHONHASHSEED``), so
decentralized-spawning results silently differed across workers for months
until the serial-vs-pool A/B suite happened to cover that configuration.
The fix (crc32) was one line; *finding* it was the expensive part.  This
rule rejects the whole class at review time:

* builtin ``hash()`` — per-process randomised for str/bytes; use
  ``zlib.crc32`` or :func:`repro.crypto.hashing.digest`.
* wall-clock reads (``time.time/monotonic/perf_counter/...``,
  ``datetime.now/utcnow``, ``date.today``) — host speed leaking into
  simulated results.  Host-side *accounting* that feeds a declared
  ``HOST_SPEED_FIELDS`` field is legitimate: annotate the line with
  ``# lint: ignore[DET001] host wall-clock accounting``.
* the process-global ``random`` module (``random.random()``,
  ``random.Random()`` with no seed, ...) — simulations must draw from a
  seeded :class:`repro.sim.rng.DeterministicRng`.
* entropy/identity escapes: ``os.urandom``, anything in ``uuid`` /
  ``secrets``, and ``id()`` used inside ordering or digest contexts
  (``sorted``/``min``/``max``/sort keys, ``digest``/``canonical_bytes``
  arguments) — CPython object addresses differ run to run.
* iterating a ``set``/``frozenset`` expression directly in a ``for`` or
  comprehension — set order depends on the hash seed; wrap in
  ``sorted(...)`` before it feeds anything order-sensitive.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.rules import FileRule, RawFinding, register

#: time-module functions that read the host clock.
_WALL_CLOCK_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: random-module functions that draw from the unseeded process-global RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "getrandbits",
        "randbytes",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "lognormvariate",
    }
)

#: Call targets whose arguments are digest/ordering contexts for ``id()``.
_ORDER_SENSITIVE_FUNCS = frozenset(
    {"sorted", "min", "max", "digest", "cached_digest", "canonical_bytes"}
)


class _ImportMap:
    """Which local names refer to which modules / module members."""

    def __init__(self, tree: ast.AST) -> None:
        self.modules: Dict[str, str] = {}  # local name -> module path
        self.members: Dict[str, Tuple[str, str]] = {}  # local -> (module, member)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.modules[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.members[local] = (node.module, alias.name)

    def call_target(self, func: ast.expr) -> Tuple[str, str]:
        """Resolve a call's func to ``(module, member)`` ("" when unknown)."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = self.modules.get(func.value.id, "")
            if module:
                return (module, func.attr)
            member = self.members.get(func.value.id)
            if member is not None:
                # e.g. ``from datetime import datetime; datetime.now()``.
                return (f"{member[0]}.{member[1]}", func.attr)
            return ("", "")
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            # e.g. datetime.datetime.now — resolve the inner attribute first.
            inner = func.value
            if isinstance(inner.value, ast.Name):
                module = self.modules.get(inner.value.id, "")
                if module:
                    return (f"{module}.{inner.attr}", func.attr)
        if isinstance(func, ast.Name):
            member = self.members.get(func.id)
            if member is not None:
                return member
        return ("", "")


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False


@register
class DeterminismRule(FileRule):
    __doc__ = __doc__

    code = "DET001"
    summary = (
        "nondeterminism source: builtin hash(), wall clock, unseeded random, "
        "urandom/uuid/secrets, id() in ordering, raw set iteration"
    )

    def check(self, path: str, tree: ast.AST, source: str) -> Iterator[RawFinding]:
        imports = _ImportMap(tree)
        findings: List[RawFinding] = []
        order_contexts: Set[int] = set()  # ids of id() calls already judged

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(node, imports, order_contexts))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    findings.append(self._set_iteration(node.iter))
            elif isinstance(node, ast.comprehension):
                if _is_set_expr(node.iter):
                    findings.append(self._set_iteration(node.iter))
        return iter(sorted(findings, key=lambda f: (f.line, f.col)))

    # ------------------------------------------------------------------ calls

    def _check_call(
        self, node: ast.Call, imports: _ImportMap, order_contexts: Set[int]
    ) -> Iterator[RawFinding]:
        func = node.func
        # builtin hash()
        if isinstance(func, ast.Name) and func.id == "hash":
            yield RawFinding(
                node.lineno,
                node.col_offset,
                "builtin hash() is per-process randomised for str/bytes; "
                "use zlib.crc32 or repro.crypto.hashing.digest",
            )
            return
        # id() inside ordering/digest contexts
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_FUNCS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "id"
                        and id(sub) not in order_contexts
                    ):
                        order_contexts.add(id(sub))
                        yield RawFinding(
                            sub.lineno,
                            sub.col_offset,
                            f"id() feeding {func.id}() orders by CPython object "
                            "address, which differs run to run; order by a "
                            "stable field instead",
                        )
        if isinstance(func, ast.Attribute) and func.attr == "sort":
            for kw in node.keywords:
                for sub in ast.walk(kw.value):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "id"
                        and id(sub) not in order_contexts
                    ):
                        order_contexts.add(id(sub))
                        yield RawFinding(
                            sub.lineno,
                            sub.col_offset,
                            "id() in a sort key orders by CPython object "
                            "address, which differs run to run",
                        )

        module, member = imports.call_target(func)
        if not module:
            return
        if module == "time" and member in _WALL_CLOCK_FUNCS:
            yield RawFinding(
                node.lineno,
                node.col_offset,
                f"time.{member}() reads the host clock; simulated code must "
                "use virtual time (annotate host-speed accounting with "
                "# lint: ignore[DET001])",
            )
        elif module == "random":
            if member in _GLOBAL_RNG_FUNCS:
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"random.{member}() draws from the unseeded process-global "
                    "RNG; use a seeded repro.sim.rng.DeterministicRng",
                )
            elif member == "Random" and not node.args and not node.keywords:
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "random.Random() without a seed is OS-entropy seeded; "
                    "pass an explicit seed",
                )
        elif module == "os" and member == "urandom":
            yield RawFinding(
                node.lineno,
                node.col_offset,
                "os.urandom() is OS entropy; derive bytes from the run seed",
            )
        elif module in ("uuid", "secrets"):
            yield RawFinding(
                node.lineno,
                node.col_offset,
                f"{module}.{member}() is nondeterministic; derive identifiers "
                "from the run seed or content addresses",
            )
        elif module in ("datetime", "datetime.datetime") and member in (
            "now",
            "utcnow",
        ):
            yield RawFinding(
                node.lineno,
                node.col_offset,
                f"datetime {member}() reads the host clock",
            )
        elif module in ("datetime", "datetime.date") and member == "today":
            yield RawFinding(
                node.lineno, node.col_offset, "date.today() reads the host clock"
            )

    def _set_iteration(self, iter_node: ast.expr) -> RawFinding:
        return RawFinding(
            iter_node.lineno,
            iter_node.col_offset,
            "iterating a set directly: iteration order depends on the "
            "per-process hash seed; wrap in sorted(...) before it feeds "
            "anything order-sensitive",
        )
