"""OBS003 — obs instrumentation without the ``is not None`` guard.

Why this rule exists: the flight recorder's zero-cost-off invariant
(PERFORMANCE.md) is that a disabled run executes the exact pre-obs hot
path.  That holds because ``ObsContext.component()`` hands components
``None`` when observability is off, and **every** instrumentation site is
a single ``if self._obs is not None:`` branch.  One unguarded
``self._obs.begin_span(...)`` either crashes obs-off runs
(``AttributeError`` on ``None``) or — worse — forces ``component()`` to
return a live object for disabled runs, quietly re-introducing per-event
overhead that the obs-on/obs-off digest suite cannot see (digests stay
identical; only the hot path got slower).

The rule flags *instrumentation* calls (``begin_span``/``end_span`` and
metric-emission methods) on a receiver named ``obs`` / ``_obs`` (bare or
as an attribute, e.g. ``self._obs``) that are not dominated by an
``is not None`` test of the same receiver.  Owner-side lifecycle calls —
the simulation calling ``component()``/``on_run_start()``/``finalize()``
on the concrete ``ObsContext`` it constructed — are not instrumentation
sites and are exempt.  Recognised guard shapes::

    if self._obs is not None:
        self._obs.begin_span(...)          # guarded

    if self._obs is None:
        return
    self._obs.begin_span(...)              # guarded (early exit)

    if self._obs is not None and cond:     # guarded (and-chain)
    assert obs is not None                 # guarded for the rest of the block

Reassigning the receiver drops its guard for the rest of the block.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from repro.lint.rules import FileRule, RawFinding, register

#: Receiver names treated as obs components.
_OBS_NAMES = frozenset({"obs", "_obs"})

#: Per-event instrumentation methods a component may call on its (possibly
#: None) obs handle.  Owner-side lifecycle methods (``component``,
#: ``on_run_start``, ``finalize``, ...) are called on the concrete context
#: and deliberately absent.
_INSTRUMENTATION_METHODS = frozenset(
    {
        "begin_span",
        "end_span",
        "counter",
        "gauge",
        "histogram",
        "increment",
        "observe",
        "record",
    }
)

_TERMINAL = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _receiver_key(node: ast.expr) -> str:
    """A stable key for a guardable receiver expression (``""`` if not one)."""
    if isinstance(node, ast.Name) and node.id in _OBS_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _OBS_NAMES:
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on valid trees
            return ""
    return ""


def _any_receiver_key(node: ast.expr) -> str:
    """Key for *any* expression usable in a guard test (not just obs ones)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover
        return ""


def _none_tests(test: ast.expr) -> Tuple[Set[str], Set[str]]:
    """``(not_none, is_none)`` receiver keys proven by ``test`` being true.

    ``and`` chains accumulate (all operands hold); ``or`` chains prove
    nothing on their own.
    """
    not_none: Set[str] = set()
    is_none: Set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            sub_not, sub_is = _none_tests(value)
            not_none |= sub_not
            is_none |= sub_is
        return not_none, is_none
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        key = _any_receiver_key(test.left)
        if key:
            if isinstance(test.ops[0], ast.IsNot):
                not_none.add(key)
            elif isinstance(test.ops[0], ast.Is):
                is_none.add(key)
    return not_none, is_none


def _terminates(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(body[-1], _TERMINAL)


@register
class ObsGuardRule(FileRule):
    __doc__ = __doc__

    code = "OBS003"
    summary = "call on an obs component without an `is not None` guard"

    def check(self, path: str, tree: ast.AST, source: str) -> Iterator[RawFinding]:
        findings: List[RawFinding] = []
        # Each function body is analysed independently; module-level code too.
        if isinstance(tree, ast.Module):
            self._walk_block(tree.body, set(), findings)
        return iter(findings)

    # ------------------------------------------------------------------ flow

    def _walk_block(
        self,
        body: Sequence[ast.stmt],
        guarded: Set[str],
        findings: List[RawFinding],
    ) -> None:
        guarded = set(guarded)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested scope starts fresh: closures may outlive the guard.
                self._walk_block(stmt.body, set(), findings)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._walk_block(stmt.body, set(), findings)
                continue
            if isinstance(stmt, ast.If):
                self._check_expr(stmt.test, guarded, findings)
                not_none, is_none = _none_tests(stmt.test)
                self._walk_block(stmt.body, guarded | not_none, findings)
                self._walk_block(stmt.orelse, guarded | is_none, findings)
                # An early-exit branch proves the *opposite* fact afterwards:
                # ``if x is None: return`` leaves x not-None for the rest of
                # the block, and vice versa for a terminating else branch.
                if _terminates(stmt.body) and not stmt.orelse:
                    guarded |= is_none
                if _terminates(stmt.orelse):
                    guarded |= not_none
                continue
            if isinstance(stmt, ast.Assert):
                self._check_expr(stmt.test, guarded, findings)
                not_none, _ = _none_tests(stmt.test)
                guarded |= not_none
                continue
            if isinstance(stmt, (ast.While,)):
                self._check_expr(stmt.test, guarded, findings)
                not_none, _ = _none_tests(stmt.test)
                self._walk_block(stmt.body, guarded | not_none, findings)
                self._walk_block(stmt.orelse, guarded, findings)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_expr(stmt.iter, guarded, findings)
                self._walk_block(stmt.body, guarded, findings)
                self._walk_block(stmt.orelse, guarded, findings)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._check_expr(item.context_expr, guarded, findings)
                self._walk_block(stmt.body, guarded, findings)
                continue
            if isinstance(stmt, ast.Try):
                self._walk_block(stmt.body, guarded, findings)
                for handler in stmt.handlers:
                    self._walk_block(handler.body, guarded, findings)
                self._walk_block(stmt.orelse, guarded, findings)
                self._walk_block(stmt.finalbody, guarded, findings)
                continue
            # Plain statement: check expressions, then account reassignment.
            self._check_stmt_exprs(stmt, guarded, findings)
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    key = _any_receiver_key(target)
                    if key:
                        guarded.discard(key)

    # ------------------------------------------------------------------ exprs

    def _check_stmt_exprs(
        self, stmt: ast.stmt, guarded: Set[str], findings: List[RawFinding]
    ) -> None:
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._check_expr(node, guarded, findings)

    def _check_expr(
        self, expr: ast.expr, guarded: Set[str], findings: List[RawFinding]
    ) -> None:
        # Recursive so expression-level guards extend coverage:
        # ``x.f() if x is not None else y`` and ``x is not None and x.f()``.
        if isinstance(expr, ast.IfExp):
            not_none, is_none = _none_tests(expr.test)
            self._check_expr(expr.test, guarded, findings)
            self._check_expr(expr.body, guarded | not_none, findings)
            self._check_expr(expr.orelse, guarded | is_none, findings)
            return
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            accumulated = set(guarded)
            for value in expr.values:
                self._check_expr(value, accumulated, findings)
                not_none, _ = _none_tests(value)
                accumulated |= not_none
            return
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _INSTRUMENTATION_METHODS
            ):
                key = _receiver_key(func.value)
                if key and key not in guarded:
                    findings.append(
                        RawFinding(
                            expr.lineno,
                            expr.col_offset,
                            f"call on obs component `{key}.{func.attr}(...)` "
                            "outside an `is not None` guard — obs-off runs "
                            "receive None here (zero-cost-off invariant)",
                        )
                    )
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._check_expr(child, guarded, findings)
