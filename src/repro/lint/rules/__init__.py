"""Rule registry: every lint rule is a small class registered in one table.

Adding a rule is three steps (see API.md "Static analysis"):

1. Write a class deriving :class:`FileRule` (one file at a time, gets the
   parsed tree) or :class:`ProjectRule` (cross-file invariants, gets every
   parsed tree at once), with a ``code``, a one-line ``summary``, and a
   docstring explaining *why the rule exists* — which incident or invariant
   it guards.  The docstring is user-facing: ``python -m repro.lint rules``
   prints it.
2. Decorate it with :func:`register`.
3. Check in a fixture pair ``tests/lint_fixtures/<code>_bad.py`` /
   ``<code>_good.py`` — ``tests/test_lint.py`` parametrises over the
   registry, so an unregistered or fixture-less rule fails CI.

The engine parses each file exactly once and hands the same tree to every
file rule, so the whole tree lints in seconds regardless of rule count.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Type


@dataclass(frozen=True)
class RawFinding:
    """A rule's output before engine bookkeeping (path/status attach later)."""

    line: int
    col: int
    message: str
    #: Project rules report against arbitrary files; file rules leave this
    #: empty and the engine fills in the file being scanned.
    path: str = ""


class Rule:
    """Base for all rules; concrete rules derive File/ProjectRule."""

    #: Stable identifier, e.g. ``"DET001"`` — what ignores/baselines name.
    code: str = ""
    #: One-line human summary for the ``rules`` listing.
    summary: str = ""

    @classmethod
    def rationale(cls) -> str:
        return (cls.__doc__ or "").strip()


class FileRule(Rule):
    """A rule that inspects one parsed file at a time."""

    def check(self, path: str, tree: ast.AST, source: str) -> Iterator[RawFinding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that inspects the whole parsed file set (cross-file invariants)."""

    def check_project(
        self, trees: Mapping[str, ast.AST]
    ) -> Iterator[RawFinding]:
        raise NotImplementedError


#: code -> rule class.  Populated by :func:`register` at import time.
RULES: Dict[str, Type[Rule]] = {}


def register(rule: Type[Rule]) -> Type[Rule]:
    if not rule.code:
        raise ValueError(f"rule {rule.__name__} has no code")
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return rule


def get_rules(codes: List[str] | None = None) -> List[Rule]:
    """Instantiate the requested rules (all of them by default)."""
    if codes is None:
        selected = sorted(RULES)
    else:
        selected = []
        for code in codes:
            normalized = code.strip().upper()
            if normalized not in RULES:
                raise KeyError(
                    f"unknown rule {code!r} (known: {', '.join(sorted(RULES))})"
                )
            selected.append(normalized)
    return [RULES[code]() for code in selected]


# Import rule modules for their @register side effects (order = catalog order).
from repro.lint.rules import determinism as _determinism  # noqa: E402,F401
from repro.lint.rules import digest as _digest  # noqa: E402,F401
from repro.lint.rules import obs as _obs  # noqa: E402,F401
from repro.lint.rules import mutation as _mutation  # noqa: E402,F401
from repro.lint.rules import excepts as _excepts  # noqa: E402,F401
from repro.lint.rules import kernel as _kernel  # noqa: E402,F401
