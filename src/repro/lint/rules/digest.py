"""DIG002 — content-address drift in ``RunSpec`` / ``SimulationResult`` /
``StoreRecord``.

Why this rule exists: the result store, sweep resumption, and every A/B
bit-identity suite key on content addresses — the SHA-256 of a resolved run
spec — and on ``simulated_fingerprint``, the result dict minus its declared
host-speed fields.  Both break *silently* when a field is added without
deciding which side of the line it lives on.  PR 7 had to design around
exactly this: attaching the observability payload to ``SimulationResult``
would have changed traced-vs-untraced fingerprints unless ``obs`` was
simultaneously declared in ``HOST_SPEED_FIELDS``.

The rule makes that decision mandatory and machine-checked.  Every field
must appear in exactly one declared partition:

* ``RunSpec`` fields (``src/repro/api/spec.py``) partition into
  ``ADDRESSED_RUNSPEC_FIELDS`` (captured by ``resolve_run`` → in the
  content address) and ``NON_ADDRESSED_RUNSPEC_FIELDS`` (deliberately
  outside it — collection flags, bespoke fault objects, expansion-only
  counts — each justified at the declaration site).
* ``SimulationResult`` fields (``src/repro/core/runner.py``) partition
  into ``SIMULATED_RESULT_FIELDS`` and ``HOST_SPEED_FIELDS`` (both in
  ``src/repro/sweep/serialization.py``).
* ``StoreRecord`` fields (``src/repro/store/record.py``) partition into
  ``ADDRESSED_RECORD_FIELDS`` (pure functions of the point's content
  address — a shard merge treats same-digest disagreement here as a
  determinism violation) and ``HOST_SIDE_RECORD_FIELDS`` (run provenance,
  resolved by deterministic tie-break).  A new warehouse field cannot
  land without deciding whether merges must agree on it.

Adding a field without extending a declaration, leaving a stale name in a
declaration, or listing a field in both partitions is an error at the
offending line.  ``tests/test_lint.py`` additionally asserts at runtime
that the declarations match ``dataclasses.fields``, so the AST view and
the live classes cannot drift apart either.

This is a *project* rule: it needs the class definitions and the
declaration constants in the scanned file set, so run ``check`` on
``src`` (or a directory containing all anchors), not on a single file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.lint.rules import ProjectRule, RawFinding, register

#: class name -> (addressed-declaration name, non-addressed-declaration name).
_PARTITIONS = {
    "RunSpec": ("ADDRESSED_RUNSPEC_FIELDS", "NON_ADDRESSED_RUNSPEC_FIELDS"),
    "SimulationResult": ("SIMULATED_RESULT_FIELDS", "HOST_SPEED_FIELDS"),
    "StoreRecord": ("ADDRESSED_RECORD_FIELDS", "HOST_SIDE_RECORD_FIELDS"),
}


@dataclass
class _FoundClass:
    path: str
    line: int
    fields: Dict[str, int]  # field name -> line


@dataclass
class _FoundDecl:
    path: str
    line: int
    names: Tuple[str, ...]


def _dataclass_fields(node: ast.ClassDef) -> Dict[str, int]:
    """The annotated instance fields of a (data)class body, with lines."""
    fields: Dict[str, int] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.unparse(stmt.annotation) if stmt.annotation else ""
        if "ClassVar" in annotation:
            continue
        fields[name] = stmt.lineno
    return fields


def _string_tuple(node: ast.expr) -> Optional[Tuple[str, ...]]:
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    names: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return tuple(names)


@register
class DigestDriftRule(ProjectRule):
    __doc__ = __doc__

    code = "DIG002"
    summary = (
        "RunSpec/SimulationResult/StoreRecord field not declared addressed "
        "or host-side (content-address drift)"
    )

    def check_project(
        self, trees: Mapping[str, ast.AST]
    ) -> Iterator[RawFinding]:
        classes: Dict[str, _FoundClass] = {}
        decls: Dict[str, _FoundDecl] = {}
        for path, tree in trees.items():
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef) and node.name in _PARTITIONS:
                    classes.setdefault(
                        node.name,
                        _FoundClass(path, node.lineno, _dataclass_fields(node)),
                    )
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and any(
                        target.id in pair for pair in _PARTITIONS.values()
                    ):
                        names = _string_tuple(node.value)
                        if names is not None:
                            decls.setdefault(
                                target.id, _FoundDecl(path, node.lineno, names)
                            )

        for class_name, (addressed_name, host_name) in _PARTITIONS.items():
            found = classes.get(class_name)
            if found is None:
                continue
            yield from self._check_partition(
                class_name,
                found,
                decls.get(addressed_name),
                addressed_name,
                decls.get(host_name),
                host_name,
            )

    def _check_partition(
        self,
        class_name: str,
        found: _FoundClass,
        addressed: Optional[_FoundDecl],
        addressed_name: str,
        non_addressed: Optional[_FoundDecl],
        non_addressed_name: str,
    ) -> Iterator[RawFinding]:
        missing_decls = [
            name
            for name, decl in ((addressed_name, addressed), (non_addressed_name, non_addressed))
            if decl is None
        ]
        if missing_decls:
            yield RawFinding(
                found.line,
                0,
                f"{class_name} found but its field partition "
                f"declaration(s) {', '.join(missing_decls)} are not in the "
                "scanned file set — run check on src/ (or declare them)",
                path=found.path,
            )
            return
        assert addressed is not None and non_addressed is not None
        addressed_set = set(addressed.names)
        non_addressed_set = set(non_addressed.names)

        for name in sorted(addressed_set & non_addressed_set):
            yield RawFinding(
                non_addressed.line,
                0,
                f"{class_name}.{name} is declared in both {addressed_name} "
                f"and {non_addressed_name}; a field is addressed or it is "
                "not — pick one",
                path=non_addressed.path,
            )
        declared = addressed_set | non_addressed_set
        for name, line in sorted(found.fields.items()):
            if name not in declared:
                yield RawFinding(
                    line,
                    0,
                    f"{class_name}.{name} is neither in {addressed_name} nor "
                    f"in {non_addressed_name}: decide whether it enters the "
                    "content address / simulated fingerprint and declare it",
                    path=found.path,
                )
        for name in sorted(declared - set(found.fields)):
            decl = addressed if name in addressed_set else non_addressed
            decl_name = addressed_name if name in addressed_set else non_addressed_name
            yield RawFinding(
                decl.line,
                0,
                f"{decl_name} lists {name!r} but {class_name} has no such "
                "field (stale declaration)",
                path=decl.path,
            )
