"""Entry point: ``python -m repro.lint ...``."""

import os
import sys

from repro.lint.cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream pager/`head` closed the pipe; redirect stdout at the fd
    # level so the interpreter's shutdown flush doesn't raise again.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
