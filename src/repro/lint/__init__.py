"""``repro.lint`` — the repo's own AST-based determinism & invariant linter.

Every guarantee this reproduction sells — bit-identical digests across
crypto backends, serial-vs-pool sweeps, obs-on/obs-off runs — is enforced
dynamically by A/B suites that cannot see a nondeterminism bug until it
fires.  This package is the static layer: a small rule engine that parses
each file once, runs every registered rule over the shared tree, and
rejects whole bug classes at review time.

The rule catalog targets this codebase's *real* failure modes (each rule's
docstring names the incident or invariant it guards):

* :data:`DET001 <repro.lint.rules.determinism.DeterminismRule>` —
  nondeterminism sources (builtin ``hash()``, wall-clock ``time.*``,
  unseeded global ``random``, ``os.urandom``/``uuid``/``secrets``,
  ``id()`` in ordering/digest contexts, set iteration without ``sorted``).
* :data:`DIG002 <repro.lint.rules.digest.DigestDriftRule>` — content-address
  drift: ``RunSpec``/``SimulationResult`` fields that are neither declared
  addressed nor declared host-speed.
* :data:`OBS003 <repro.lint.rules.obs.ObsGuardRule>` — instrumentation
  calls on an obs component without the ``is not None`` guard.
* :data:`MUT004 <repro.lint.rules.mutation.FrozenMutationRule>` — frozen
  message mutation outside constructors (the digest memo's soundness).
* :data:`EXC005 <repro.lint.rules.excepts.ExceptionSwallowRule>` — bare
  ``except`` and silent ``except Exception: pass`` swallows.

Suppression is explicit and reviewable: an inline ``# lint: ignore[RULE]``
comment (same line or the line above) with a justification, or an entry in
a checked-in baseline file whose ``reason`` field must be filled in —
``check`` fails on unexplained baseline entries, so the baseline can only
shrink honestly.

Run it with ``python -m repro.lint check src`` (see :mod:`repro.lint.cli`).
The linter reads source text only; it imports nothing it scans and cannot
affect runtime digests.
"""

from __future__ import annotations

from repro.lint.engine import Finding, LintResult, iter_python_files, run_lint
from repro.lint.rules import RULES, Rule, get_rules
from repro.lint.suppress import Baseline, parse_ignores

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "get_rules",
    "iter_python_files",
    "parse_ignores",
    "run_lint",
]
