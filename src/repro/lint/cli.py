"""``python -m repro.lint`` — check / rules / baseline.

Exit codes (stable; CI depends on them):

* ``0`` — clean: no error findings, no unexplained baseline entries.
* ``1`` — findings (or unexplained baseline entries).
* ``2`` — usage error (unknown rule, unreadable baseline, bad arguments).

``check`` prints one ``path:line:col CODE message`` line per error (the
format editors and CI annotators already parse); ``--json`` emits the
machine-readable document described in ``tests/test_lint.py`` instead.
``rules`` prints the catalog with each rule's why-it-exists rationale.
``baseline`` writes the current findings into a baseline file with blank
reasons — ``check`` keeps failing until a human justifies each entry, so
baselining is a starting point for a cleanup, never an amnesty.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import LintResult, run_lint
from repro.lint.rules import RULES
from repro.lint.suppress import Baseline

#: Default baseline filename probed in the current directory.
DEFAULT_BASELINE = "lint_baseline.json"


def _load_baseline(path: Optional[str]) -> Optional[Baseline]:
    """Resolve the baseline: explicit path, else ./lint_baseline.json if any."""
    if path is not None:
        return Baseline.load(path)
    if os.path.exists(DEFAULT_BASELINE):
        return Baseline.load(DEFAULT_BASELINE)
    return None


def _print_human(result: LintResult, show_suppressed: bool) -> None:
    for finding in result.findings:
        if finding.status == "error":
            print(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule} {finding.message}"
            )
        elif show_suppressed:
            print(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule} [{finding.status}] {finding.message}"
            )
    for entry in result.unexplained_baseline:
        print(
            f"{entry['path']}: baseline entry for {entry['rule']} "
            f"({entry['snippet'][:60]!r}) has no reason — justify or remove it"
        )
    for entry in result.stale_baseline:
        print(
            f"note: stale baseline entry {entry['rule']} at {entry['path']} "
            f"matches nothing anymore; prune it"
        )
    counts = result.counts()
    print(
        f"[lint] {result.files_scanned} files, "
        f"{counts['error']} error(s), {counts['suppressed']} suppressed, "
        f"{counts['baselined']} baselined"
    )


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        baseline = None if args.no_baseline else _load_baseline(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = run_lint(args.paths, rules=args.rules, baseline=baseline)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        _print_human(result, show_suppressed=args.show_suppressed)
    return 0 if result.ok else 1


def _cmd_rules(args: argparse.Namespace) -> int:
    if args.json:
        payload = [
            {
                "code": code,
                "summary": RULES[code].summary,
                "rationale": RULES[code].rationale(),
            }
            for code in sorted(RULES)
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for code in sorted(RULES):
        rule = RULES[code]
        print(f"{code}: {rule.summary}")
        rationale = rule.rationale()
        if rationale:
            first_paragraph = rationale.split("\n\n")[0]
            for line in first_paragraph.splitlines():
                print(f"    {line.strip()}")
        print()
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    try:
        result = run_lint(args.paths, rules=args.rules, baseline=None)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    errors = result.errors
    baseline = Baseline.from_findings(errors)
    if args.update and os.path.exists(args.output):
        # Keep existing (possibly justified) entries that still match.
        try:
            existing = Baseline.load(args.output)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        kept = {entry.key(): entry for entry in existing.entries}
        baseline.entries = [
            kept.get(entry.key(), entry) for entry in baseline.entries
        ]
    baseline.save(args.output)
    blank = sum(1 for entry in baseline.entries if not entry.explained)
    print(
        f"[lint] wrote {len(baseline.entries)} entries to {args.output}"
        + (f" ({blank} still need a reason before check passes)" if blank else "")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & invariant linter for this repo",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="lint paths; exit 1 on findings")
    check.add_argument("paths", nargs="*", default=["src"], help="files/dirs")
    check.add_argument("--json", action="store_true", help="machine output")
    check.add_argument(
        "--rules",
        type=lambda value: [code for code in value.split(",") if code],
        default=None,
        metavar="CODE[,CODE...]",
        help="run only these rules",
    )
    check.add_argument(
        "--baseline", default=None, help=f"baseline file (default: ./{DEFAULT_BASELINE})"
    )
    check.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    check.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed/baselined findings",
    )
    check.set_defaults(func=_cmd_check)

    rules = sub.add_parser("rules", help="print the rule catalog")
    rules.add_argument("--json", action="store_true")
    rules.set_defaults(func=_cmd_rules)

    baseline = sub.add_parser(
        "baseline", help="write current findings to a baseline file"
    )
    baseline.add_argument("paths", nargs="*", default=["src"])
    baseline.add_argument(
        "--rules",
        type=lambda value: [code for code in value.split(",") if code],
        default=None,
        metavar="CODE[,CODE...]",
    )
    baseline.add_argument("--output", default=DEFAULT_BASELINE)
    baseline.add_argument(
        "--update",
        action="store_true",
        help="keep reasons of existing entries that still match",
    )
    baseline.set_defaults(func=_cmd_baseline)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(list(argv) if argv is not None else None)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; normalise.
        return int(exc.code or 0)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
