"""Suppression: inline ``# lint: ignore[RULE]`` comments and the baseline.

Two sanctioned ways to silence a finding, both reviewable in diffs:

* An inline comment on the offending line (or on a comment-only line
  directly above it)::

      started = time.perf_counter()  # lint: ignore[DET001] host wall-clock

  Multiple codes separate with commas: ``# lint: ignore[DET001,EXC005]``.

* A checked-in baseline file (JSON) listing pre-existing findings.  Each
  entry matches by ``(rule, path, snippet)`` — not by line number, so
  unrelated edits above a baselined site do not invalidate it — and must
  carry a non-empty ``reason`` that does not start with ``TODO``:
  ``check`` reports unexplained entries as errors, which is what keeps the
  baseline an honest ratchet instead of a dumping ground.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.lint.engine import Finding

#: Current baseline file layout; bumped on incompatible changes.
BASELINE_VERSION = 1

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


def parse_ignores(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule codes ignored on that line.

    A ``# lint: ignore[...]`` on a comment-only line also covers the next
    line, so a justification too long for a trailing comment can sit on
    its own line above the finding.
    """
    ignores: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match is None:
            continue
        codes = {code.strip().upper() for code in match.group(1).split(",")}
        codes.discard("")
        if not codes:
            continue
        ignores.setdefault(lineno, set()).update(codes)
        if _COMMENT_ONLY_RE.match(line):
            ignores.setdefault(lineno + 1, set()).update(codes)
    return ignores


def is_suppressed(ignores: Dict[int, Set[str]], rule: str, line: int) -> bool:
    """Whether an inline ignore covers ``rule`` at ``line``."""
    return rule.upper() in ignores.get(line, ())


# ------------------------------------------------------------------ baseline


@dataclass
class BaselineEntry:
    """One acknowledged pre-existing finding."""

    rule: str
    path: str
    snippet: str
    reason: str = ""

    @property
    def explained(self) -> bool:
        """An entry is explained when someone wrote down *why* it stays."""
        reason = self.reason.strip()
        return bool(reason) and not reason.upper().startswith("TODO")

    def key(self) -> Tuple[str, str, str]:
        return (self.rule.upper(), self.path, self.snippet)

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """The checked-in set of acknowledged findings."""

    entries: List[BaselineEntry] = field(default_factory=list)
    path: Optional[str] = None

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: not a lint baseline file (no 'entries')")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: baseline version {version!r} != {BASELINE_VERSION}"
            )
        entries = [
            BaselineEntry(
                rule=str(raw.get("rule", "")),
                path=str(raw.get("path", "")),
                snippet=str(raw.get("snippet", "")),
                reason=str(raw.get("reason", "")),
            )
            for raw in payload["entries"]
        ]
        return cls(entries=entries, path=path)

    def save(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in sorted(
                self.entries, key=lambda entry: entry.key()
            )],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def match(self, finding: "Finding") -> Optional[BaselineEntry]:
        """The entry covering ``finding``, or None."""
        key = (finding.rule.upper(), finding.path, finding.snippet)
        for entry in self.entries:
            if entry.key() == key:
                return entry
        return None

    def stale_entries(self, findings: List["Finding"]) -> List[BaselineEntry]:
        """Entries that no current finding matches (fixed code → prune them)."""
        seen = {(f.rule.upper(), f.path, f.snippet) for f in findings}
        return [entry for entry in self.entries if entry.key() not in seen]

    def unexplained_entries(self) -> List[BaselineEntry]:
        return [entry for entry in self.entries if not entry.explained]

    @classmethod
    def from_findings(cls, findings: List["Finding"]) -> "Baseline":
        """A baseline acknowledging every given finding (reasons left blank).

        Blank reasons make ``check`` fail until a human justifies each
        entry — writing a baseline is a starting point, not an amnesty.
        """
        entries = [
            BaselineEntry(rule=f.rule, path=f.path, snippet=f.snippet)
            for f in findings
        ]
        unique: Dict[Tuple[str, str, str], BaselineEntry] = {}
        for entry in entries:
            unique.setdefault(entry.key(), entry)
        return cls(entries=list(unique.values()))
