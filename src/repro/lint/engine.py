"""The lint engine: one parse per file, every rule over the shared tree.

:func:`run_lint` is the single entry point the CLI and tests use.  It

1. expands the requested paths into ``.py`` files (skipping
   ``__pycache__`` and hidden directories),
2. parses each file exactly once (a syntax error becomes a ``SYNTAX``
   finding, not a crash),
3. runs every file rule over each tree and every project rule over the
   whole tree set,
4. classifies each finding as ``error``, ``suppressed`` (an inline
   ``# lint: ignore[RULE]`` covers it), or ``baselined`` (a baseline
   entry with a filled-in reason covers it), and
5. reports unexplained baseline entries as errors and stale entries
   (matching nothing anymore) for pruning.

The engine reads source text only — nothing it scans is imported, so
linting can never execute simulation code or perturb runtime digests.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.rules import FileRule, ProjectRule, RawFinding, Rule, get_rules
from repro.lint.suppress import Baseline, is_suppressed, parse_ignores

#: Pseudo-rule code attached to files the parser rejects.
SYNTAX_RULE = "SYNTAX"


@dataclass
class Finding:
    """One lint finding, fully attributed."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line — what baseline entries match on, so line
    #: drift from unrelated edits does not invalidate them.
    snippet: str = ""
    #: ``error`` | ``suppressed`` | ``baselined``.
    status: str = "error"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "status": self.status,
        }


@dataclass
class LintResult:
    """Everything one ``run_lint`` call produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Baseline entries no current finding matches (prune them).
    stale_baseline: List[Dict[str, str]] = field(default_factory=list)
    #: Baseline entries without a justification (reported as errors).
    unexplained_baseline: List[Dict[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.status == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.unexplained_baseline

    def counts(self) -> Dict[str, int]:
        counts = {"error": 0, "suppressed": 0, "baselined": 0}
        for finding in self.findings:
            counts[finding.status] = counts.get(finding.status, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """The JSON-output schema (version 1; see tests/test_lint.py)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
            "stale_baseline": list(self.stale_baseline),
            "unexplained_baseline": list(self.unexplained_baseline),
        }


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into ``.py`` paths, deterministically sorted."""
    seen: Set[str] = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                collected.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name != "__pycache__" and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    collected.append(full)
    return iter(sorted(collected))


def _normalise(path: str) -> str:
    """Stable, cwd-relative-when-possible posix path for reports/baselines."""
    relative = os.path.relpath(path)
    chosen = relative if not relative.startswith("..") else os.path.abspath(path)
    return chosen.replace(os.sep, "/")


def _snippet(source_lines: Sequence[str], line: int) -> str:
    if 1 <= line <= len(source_lines):
        return source_lines[line - 1].strip()
    return ""


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``paths`` with the requested rules (all registered by default)."""
    selected: List[Rule] = get_rules(list(rules) if rules is not None else None)
    file_rules = [rule for rule in selected if isinstance(rule, FileRule)]
    project_rules = [rule for rule in selected if isinstance(rule, ProjectRule)]

    result = LintResult()
    raw: List[Tuple[str, RawFinding]] = []  # (rule code, finding w/ path set)
    trees: Dict[str, ast.AST] = {}
    sources: Dict[str, List[str]] = {}
    ignores: Dict[str, Dict[int, Set[str]]] = {}

    for filepath in iter_python_files(paths):
        norm = _normalise(filepath)
        result.files_scanned += 1
        try:
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            result.findings.append(
                Finding(SYNTAX_RULE, norm, 0, 0, f"cannot read file: {exc}")
            )
            continue
        try:
            tree = ast.parse(source, filename=filepath)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    SYNTAX_RULE,
                    norm,
                    exc.lineno or 0,
                    exc.offset or 0,
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        trees[norm] = tree
        sources[norm] = source.splitlines()
        ignores[norm] = parse_ignores(source)
        for rule in file_rules:
            for finding in rule.check(norm, tree, source):
                raw.append((rule.code, RawFinding(
                    finding.line, finding.col, finding.message, path=norm
                )))

    for rule in project_rules:
        for finding in rule.check_project(trees):
            raw.append((rule.code, finding))

    for code, item in raw:
        path = item.path
        finding = Finding(
            rule=code,
            path=path,
            line=item.line,
            col=item.col,
            message=item.message,
            snippet=_snippet(sources.get(path, []), item.line),
        )
        if is_suppressed(ignores.get(path, {}), code, item.line):
            finding.status = "suppressed"
        elif baseline is not None:
            entry = baseline.match(finding)
            if entry is not None and entry.explained:
                finding.status = "baselined"
        result.findings.append(finding)

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if baseline is not None:
        result.stale_baseline = [
            entry.to_dict() for entry in baseline.stale_entries(result.findings)
        ]
        result.unexplained_baseline = [
            entry.to_dict() for entry in baseline.unexplained_entries()
        ]
    return result
