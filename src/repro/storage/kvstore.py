"""Versioned key-value store (the on-premise data store ``S``).

Every key carries a monotonically increasing version.  Executors attach the
versions they read to their VERIFY messages; the verifier re-reads the same
keys and only applies the writes if the versions still match (the paper's
"read sets match" concurrency-control check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import StorageError


@dataclass(frozen=True)
class VersionedValue:
    """A value together with the version at which it was last written."""

    value: str
    version: int


@dataclass(frozen=True)
class ReadResult:
    """The outcome of reading a set of keys at one point in time."""

    values: Dict[str, VersionedValue] = field(default_factory=dict)

    def versions(self) -> Dict[str, int]:
        return {key: entry.version for key, entry in self.values.items()}

    def matches_versions(self, other_versions: Mapping[str, int]) -> bool:
        """True if every key we read has the same version as in ``other_versions``."""
        for key, entry in self.values.items():
            if other_versions.get(key) != entry.version:
                return False
        return True


class VersionedKVStore:
    """A simple in-memory versioned key-value store.

    Missing keys read as ``VersionedValue("", 0)`` so that workloads touching
    keys that were never loaded still behave deterministically.
    """

    def __init__(self) -> None:
        self._data: Dict[str, VersionedValue] = {}
        self._reads = 0
        self._writes = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def read_count(self) -> int:
        return self._reads

    @property
    def write_count(self) -> int:
        return self._writes

    def load(self, num_records: int, key_prefix: str = "user", value: str = "x" * 100) -> None:
        """Bulk-load the initial YCSB table (600 k records in the paper)."""
        if num_records < 0:
            raise StorageError("cannot load a negative number of records")
        for index in range(num_records):
            self._data[f"{key_prefix}{index}"] = VersionedValue(value=value, version=1)

    def contains(self, key: str) -> bool:
        return key in self._data

    def read(self, key: str) -> VersionedValue:
        self._reads += 1
        return self._data.get(key, VersionedValue(value="", version=0))

    def read_many(self, keys: Iterable[str]) -> ReadResult:
        return ReadResult(values={key: self.read(key) for key in keys})

    def current_versions(self, keys: Iterable[str]) -> Dict[str, int]:
        return {key: self._data.get(key, VersionedValue("", 0)).version for key in keys}

    def apply_writes(self, writes: Mapping[str, str]) -> Dict[str, int]:
        """Apply a write set atomically, bumping each key's version.

        Returns the new version of every written key.
        """
        new_versions: Dict[str, int] = {}
        for key, value in writes.items():
            current = self._data.get(key, VersionedValue("", 0))
            updated = VersionedValue(value=value, version=current.version + 1)
            self._data[key] = updated
            new_versions[key] = updated.version
            self._writes += 1
        return new_versions

    def get_value(self, key: str) -> Optional[str]:
        entry = self._data.get(key)
        return entry.value if entry is not None else None

    def keys(self) -> List[str]:
        return list(self._data.keys())
