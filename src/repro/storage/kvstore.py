"""Versioned key-value store (the on-premise data store ``S``).

Every key carries a monotonically increasing version.  Executors attach the
versions they read to their VERIFY messages; the verifier re-reads the same
keys and only applies the writes if the versions still match (the paper's
"read sets match" concurrency-control check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import StorageError


class VersionedValue(NamedTuple):
    """A value together with the version at which it was last written.

    A NamedTuple rather than a frozen dataclass: the store allocates one per
    committed write on the verifier's hot path, and tuple construction runs
    entirely in C (no per-instance ``__dict__``).  Field access, equality,
    and ``VersionedValue(value=..., version=...)`` construction are
    unchanged for callers.
    """

    value: str
    version: int


@dataclass(frozen=True)
class ReadResult:
    """The outcome of reading a set of keys at one point in time.

    ``snapshot_token`` identifies the store state the read observed: the
    store's mutation counter at read time.  Two reads with the same token saw
    the exact same state, which lets executors share memoised execution
    results without comparing per-key versions (-1 = unknown/manual).
    """

    values: Dict[str, VersionedValue] = field(default_factory=dict)
    snapshot_token: int = -1

    def versions(self) -> Dict[str, int]:
        return {key: entry.version for key, entry in self.values.items()}

    def versions_tuple(self) -> Tuple[int, ...]:
        """Versions in key-insertion order, memoised (cheap state identity)."""
        cached = self.__dict__.get("_versions_tuple")
        if cached is None:
            cached = tuple(entry.version for entry in self.values.values())
            object.__setattr__(self, "_versions_tuple", cached)
        return cached

    def versions_map(self) -> Dict[str, int]:
        """Like :meth:`versions`, but memoised (callers must not mutate)."""
        cached = self.__dict__.get("_versions_map")
        if cached is None:
            cached = {key: entry.version for key, entry in self.values.items()}
            object.__setattr__(self, "_versions_map", cached)
        return cached

    def plain_values(self) -> Dict[str, str]:
        """The raw key → value mapping, memoised (callers must not mutate)."""
        cached = self.__dict__.get("_plain_values")
        if cached is None:
            cached = {key: entry.value for key, entry in self.values.items()}
            object.__setattr__(self, "_plain_values", cached)
        return cached

    def matches_versions(self, other_versions: Mapping[str, int]) -> bool:
        """True if every key we read has the same version as in ``other_versions``."""
        for key, entry in self.values.items():
            if other_versions.get(key) != entry.version:
                return False
        return True


#: Shared immutable sentinel returned for keys that were never written:
#: allocating a fresh ``VersionedValue("", 0)`` per missing read dominates the
#: storage profile on non-preloaded runs.
_MISSING = VersionedValue(value="", version=0)


class VersionedKVStore:
    """A simple in-memory versioned key-value store.

    Missing keys read as ``VersionedValue("", 0)`` so that workloads touching
    keys that were never loaded still behave deterministically.
    """

    def __init__(self) -> None:
        self._data: Dict[str, VersionedValue] = {}
        self._reads = 0
        self._writes = 0
        self._mutations = 0
        # keys-tuple -> ReadResult at some recent snapshot: the paper spawns
        # 3f_E+1 executors per batch, and all of them read the same key set —
        # in the common race-free case they hit this cache and share one
        # ReadResult object (and its memoised value/version maps).  Bounded:
        # only batches currently in flight benefit, so the cache is cleared
        # once it exceeds _READ_CACHE_LIMIT distinct key sets (long runs
        # would otherwise retain one dead ReadResult per committed batch).
        self._read_cache: Dict[Tuple[str, ...], ReadResult] = {}
        # Keys changed by each mutation, ``self._mutation_log[i]`` holding
        # the keys of mutation ``self._mutation_log_base + i + 1`` (None =
        # "many/unknown", e.g. a bulk load).  Lets snapshot consumers prove
        # "nothing I read changed since token T" with one C disjointness
        # check instead of re-reading every key; trimmed so only the recent
        # window is answerable (older tokens report "unknown").
        self._mutation_log: List[Optional[List[str]]] = []
        self._mutation_log_base = 0

    _READ_CACHE_LIMIT = 1024
    _MUTATION_LOG_LIMIT = 128

    def __len__(self) -> int:
        return len(self._data)

    @property
    def read_count(self) -> int:
        return self._reads

    @property
    def write_count(self) -> int:
        return self._writes

    @property
    def mutation_count(self) -> int:
        """Bumps whenever the store's state changes (snapshot identity)."""
        return self._mutations

    def load(self, num_records: int, key_prefix: str = "user", value: str = "x" * 100) -> None:
        """Bulk-load the initial YCSB table (600 k records in the paper)."""
        if num_records < 0:
            raise StorageError("cannot load a negative number of records")
        initial = VersionedValue(value=value, version=1)
        for index in range(num_records):
            self._data[f"{key_prefix}{index}"] = initial
        if num_records:
            self._note_mutation(None)

    def contains(self, key: str) -> bool:
        return key in self._data

    def read(self, key: str) -> VersionedValue:
        self._reads += 1
        return self._data.get(key, _MISSING)

    def read_many(self, keys: Iterable[str]) -> ReadResult:
        if not isinstance(keys, tuple):
            keys = tuple(keys)
        self._reads += len(keys)
        token = self._mutations
        get = self._data.get
        cached = self._read_cache.get(keys)
        if cached is not None:
            if cached.snapshot_token == token:
                return cached
            # The store changed since the cached read, but maybe not under
            # *these* keys (commits touch disjoint key partitions most of
            # the time).  The mutation log usually proves disjointness with
            # one C set check per commit since the snapshot; only an
            # out-of-window token falls back to the per-key comparison.
            # Returning the cached object (old token included) keeps every
            # memo keyed on it valid.
            state = self.keys_changed_since(cached.snapshot_token, cached.values.keys())
            if state == 0:
                return cached
            if state < 0:
                # Versions determine values, so an int-tuple comparison is
                # enough to prove the cached result is still exact.
                versions = tuple(get(key, _MISSING).version for key in keys)
                if versions == cached.versions_tuple():
                    return cached
        result = ReadResult(
            values={key: get(key, _MISSING) for key in keys}, snapshot_token=token
        )
        if len(self._read_cache) >= self._READ_CACHE_LIMIT:
            self._read_cache.clear()
        self._read_cache[keys] = result
        return result

    def current_versions(self, keys: Iterable[str]) -> Dict[str, int]:
        get = self._data.get
        return {key: get(key, _MISSING).version for key in keys}

    def version_of(self, key: str) -> int:
        """Current version of one key (0 if never written; no read counted).

        The verifier's incremental validation seeds its live version map
        through this instead of snapshotting whole key sets per batch.
        """
        return self._data.get(key, _MISSING).version

    def _note_mutation(self, changed: Optional[List[str]]) -> None:
        self._mutations += 1
        log = self._mutation_log
        log.append(changed)
        if len(log) > self._MUTATION_LOG_LIMIT:
            half = self._MUTATION_LOG_LIMIT // 2
            del log[:half]
            self._mutation_log_base += half

    def keys_changed_since(self, token: int, keys) -> int:
        """Did any of ``keys`` change after snapshot ``token``?

        Returns 0 (provably unchanged), 1 (provably changed: some key's
        version was bumped — versions are monotone under writes, so any
        snapshot of these keys taken at ``token`` is stale), or -1 (unknown:
        the token predates the retained log window or a bulk load happened).
        ``keys`` must support ``isdisjoint`` (set, frozenset, or dict view).
        """
        if token < 0:
            return -1
        base = self._mutation_log_base
        if token < base:
            return -1
        changed = False
        for entry in self._mutation_log[token - base :]:
            if entry is None:
                return -1
            if not changed and not keys.isdisjoint(entry):
                changed = True
        return 1 if changed else 0

    def apply_writes(self, writes: Mapping[str, str]) -> Dict[str, int]:
        """Apply a write set atomically, bumping each key's version.

        Returns the new version of every written key.
        """
        data = self._data
        new_versions: Dict[str, int] = {}
        for key, value in writes.items():
            current = data.get(key, _MISSING)
            updated = VersionedValue(value=value, version=current.version + 1)
            data[key] = updated
            new_versions[key] = updated.version
        if new_versions:
            self._writes += len(new_versions)
            self._note_mutation(list(new_versions))
        return new_versions

    def apply_write_sets(self, write_sets: Iterable[Mapping[str, str]]) -> None:
        """Apply several write sets in order (one validated batch).

        Equivalent to calling :meth:`apply_writes` per set — later writes to
        the same key bump its version again — minus the per-set call and
        result-dict overhead the verifier's hot path doesn't need.
        """
        data = self._data
        get = data.get
        new = tuple.__new__
        changed: List[str] = []
        append_changed = changed.append
        for writes in write_sets:
            for key, value in writes.items():
                # One C-level tuple construction per committed write (this
                # is the verifier's write loop).
                data[key] = new(VersionedValue, (value, get(key, _MISSING).version + 1))
                append_changed(key)
        if changed:
            self._writes += len(changed)
            self._note_mutation(changed)

    def get_value(self, key: str) -> Optional[str]:
        entry = self._data.get(key)
        return entry.value if entry is not None else None

    def keys(self) -> List[str]:
        return list(self._data.keys())
