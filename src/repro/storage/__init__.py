"""On-premise storage substrate.

Per the paper, all client data stays in an on-premise data store ``S`` owned
by the enterprise; executors may read from it but never write, and the
trusted verifier ``V`` is the only component that applies updates.  The
store is a versioned key-value database so the verifier can run the
concurrency-control check ("are the read-write sets the executor saw still
current?") exactly as described in Section IV-D.
"""

from repro.storage.kvstore import ReadResult, VersionedKVStore, VersionedValue
from repro.storage.service import StorageReadReply, StorageReadRequest, StorageService

__all__ = [
    "ReadResult",
    "StorageReadReply",
    "StorageReadRequest",
    "StorageService",
    "VersionedKVStore",
    "VersionedValue",
]
