"""Network-facing read service of the on-premise storage.

Executors (Lines 17–18 of the paper's Figure 3) fetch the current state of a
transaction's read-write set over the network before executing.  The storage
service answers those read requests; it never accepts writes over the
network — only the co-located verifier can update the store, via direct
method calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.storage.kvstore import ReadResult, VersionedKVStore


@dataclass(frozen=True)
class StorageReadRequest:
    """A request to read the current state of a set of keys."""

    request_id: str
    keys: Tuple[str, ...]


@dataclass(frozen=True)
class StorageReadReply:
    """The storage's reply carrying values and versions."""

    request_id: str
    result: ReadResult


class StorageService(SimProcess):
    """The storage endpoint reachable by executors for read-only access."""

    #: Approximate wire size of a read request/reply per key, in bytes.
    REQUEST_BYTES_PER_KEY = 64
    REPLY_BYTES_PER_KEY = 160

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        store: VersionedKVStore,
        name: str = "storage",
        region: str = "us-west-1",
        read_service_time: float = 20e-6,
    ) -> None:
        super().__init__(sim, name, region, cores=None)
        self._network = network
        self._store = store
        self._read_service_time = read_service_time
        self._requests_served = 0
        network.register(name, region, self.on_message)

    @property
    def store(self) -> VersionedKVStore:
        return self._store

    @property
    def requests_served(self) -> int:
        return self._requests_served

    def on_message(self, message, sender: str) -> None:
        if isinstance(message, StorageReadRequest):
            self._requests_served += 1
            # The read itself is cheap; model it as a small fixed service
            # delay.  Replies are never cancelled: fire-and-forget fast path.
            self.set_timer_fast(self._read_service_time, self._reply, message, sender)

    def _reply(self, request: StorageReadRequest, sender: str) -> None:
        result = self._store.read_many(request.keys)
        reply = StorageReadReply(request_id=request.request_id, result=result)
        size = self.REPLY_BYTES_PER_KEY * max(1, len(request.keys))
        self._network.send(self.name, sender, reply, size_bytes=size)
