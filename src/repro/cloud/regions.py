"""Cloud regions and the geographic latency model.

The evaluation spawns executors in up to 11 AWS regions, in this order:
North California, Oregon, Ohio, Canada, Frankfurt, Ireland, London, Paris,
Stockholm, Seoul, and Singapore; the verifier, shim, and clients run in
North California (Oracle Cloud).  We model one-way latency between regions
as speed-of-light-in-fibre propagation over the great-circle distance plus a
fixed per-hop overhead and jitter — this reproduces the realistic ordering
of inter-region latencies (nearby North-American/European regions respond
first, Seoul/Singapore last), which is what drives Figure 6(vii–viii).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.sim.network import LatencyModel
from repro.sim.rng import DeterministicRNG


@dataclass(frozen=True)
class Region:
    """A cloud region with its geographic coordinates."""

    name: str
    latitude: float
    longitude: float
    provider: str = "aws"


#: The 11 regions used by the paper, in the paper's order.
DEFAULT_REGIONS: List[Region] = [
    Region("us-west-1", 37.35, -121.96, "aws"),      # North California
    Region("us-west-2", 45.52, -122.68, "aws"),      # Oregon
    Region("us-east-2", 40.00, -83.00, "aws"),       # Ohio
    Region("ca-central-1", 45.50, -73.57, "aws"),    # Canada (Montreal)
    Region("eu-central-1", 50.11, 8.68, "aws"),      # Frankfurt
    Region("eu-west-1", 53.33, -6.25, "aws"),        # Ireland
    Region("eu-west-2", 51.51, -0.13, "aws"),        # London
    Region("eu-west-3", 48.86, 2.35, "aws"),         # Paris
    Region("eu-north-1", 59.33, 18.07, "aws"),       # Stockholm
    Region("ap-northeast-2", 37.57, 126.98, "aws"),  # Seoul
    Region("ap-southeast-1", 1.35, 103.82, "aws"),   # Singapore
]

#: Region hosting the shim, clients, and verifier in the paper's setup.
HOME_REGION = "us-west-1"

_EARTH_RADIUS_KM = 6371.0
# Effective signal speed in fibre (~2/3 c) with a routing-indirection factor.
_FIBRE_KM_PER_SEC = 200_000.0
_ROUTE_INDIRECTION = 1.4


def great_circle_km(a: Region, b: Region) -> float:
    """Great-circle distance between two regions in kilometres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


class RegionCatalog:
    """Lookup table of regions plus pairwise one-way latency estimates."""

    def __init__(self, regions: Sequence[Region] = DEFAULT_REGIONS) -> None:
        if not regions:
            raise ConfigurationError("a region catalog needs at least one region")
        self._regions: Dict[str, Region] = {region.name: region for region in regions}
        self._order = [region.name for region in regions]
        self._latency_cache: Dict[tuple, float] = {}

    @property
    def names(self) -> List[str]:
        return list(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __len__(self) -> int:
        return len(self._regions)

    def get(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise ConfigurationError(f"unknown region {name!r}")

    def first(self, count: int) -> List[str]:
        """The first ``count`` regions in the paper's ordering."""
        if count > len(self._order):
            raise ConfigurationError(
                f"requested {count} regions but only {len(self._order)} are defined"
            )
        return self._order[:count]

    def one_way_latency(self, src: str, dst: str) -> float:
        """Median one-way latency (seconds) between two regions."""
        key = (src, dst)
        latency = self._latency_cache.get(key)
        if latency is None:
            if src == dst:
                latency = 0.0005
            else:
                distance = great_circle_km(self.get(src), self.get(dst))
                latency = 0.002 + (distance * _ROUTE_INDIRECTION) / _FIBRE_KM_PER_SEC
            self._latency_cache[key] = latency
        return latency

    def nearest(self, origin: str, candidates: Sequence[str]) -> List[str]:
        """Candidates sorted by latency from ``origin`` (closest first)."""
        return sorted(candidates, key=lambda name: self.one_way_latency(origin, name))


class GeoLatencyModel(LatencyModel):
    """Latency model combining the region catalog with bandwidth and jitter."""

    def __init__(
        self,
        catalog: RegionCatalog,
        bandwidth_bytes_per_sec: float = 1.25e9,
        jitter_fraction: float = 0.05,
    ) -> None:
        self._catalog = catalog
        self._bandwidth = bandwidth_bytes_per_sec
        self._jitter_fraction = jitter_fraction

    @property
    def catalog(self) -> RegionCatalog:
        return self._catalog

    def one_way_delay(
        self,
        src_region: str,
        dst_region: str,
        size_bytes: int,
        rng: DeterministicRNG,
    ) -> float:
        base = self._catalog.one_way_latency(src_region, dst_region)
        delay = base
        if self._jitter_fraction > 0:
            # Bit-exact inline of rng.uniform(0.0, bound): uniform computes
            # ``0.0 + (bound - 0.0) * random()`` == ``bound * random()``,
            # one stdlib frame cheaper per message send.
            delay += (base * self._jitter_fraction) * rng.random()
        if self._bandwidth > 0 and size_bytes > 0:
            delay += size_bytes / self._bandwidth
        return delay
