"""Serverless function service simulator (the "AWS Lambda" of the paper).

Shim nodes do not run executors themselves: they ask the serverless cloud to
spawn them.  This module models that control plane:

* spawn latency — a cold start (container provisioning) or a cheaper warm
  start when a recently used sandbox is available in that region;
* per-region concurrency limits (the paper could not scale beyond 21
  concurrently spawned executors because of provider limits);
* unique executor identities (each executor gets its own key pair, per the
  paper's *Identity* assumption);
* accountability and payment — every spawn is billed to the shim node that
  requested it via :class:`repro.cloud.billing.CostModel`, and executors can
  never spawn further executors.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.cloud.billing import CostModel
from repro.cloud.regions import RegionCatalog
from repro.errors import CloudError
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRNG


@dataclass(frozen=True)
class SpawnRequest:
    """A request by a shim node to spawn one executor in one region."""

    spawner: str
    region: str
    payload: Any


@dataclass
class ExecutorHandle:
    """Book-keeping record for one spawned executor instance."""

    executor_id: str
    region: str
    spawner: str
    spawn_time: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    cost: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.start_time is None or self.finish_time is None:
            return 0.0
        return self.finish_time - self.start_time


class _RegionState:
    """Concurrency and warm-pool state of one region."""

    def __init__(self, concurrency_limit: int) -> None:
        self.concurrency_limit = concurrency_limit
        self.running = 0
        self.warm_sandboxes = 0
        self.queue: Deque[Callable[[], None]] = deque()


class ServerlessCloud:
    """A multi-region serverless function service.

    The cloud is given an ``executor_factory`` callback by the deployment
    runner: ``factory(executor_id, region, spawner, payload)`` must create
    the executor process, register it on the network, and start executing the
    payload.  The cloud only controls *when* that happens (spawn latency,
    concurrency limits) and *what it costs*.
    """

    def __init__(
        self,
        sim: Simulator,
        catalog: RegionCatalog,
        cost_model: CostModel,
        rng: DeterministicRNG,
        executor_factory: Optional[Callable[..., Any]] = None,
        cold_start_latency: float = 0.150,
        warm_start_latency: float = 0.015,
        concurrency_limit_per_region: int = 1000,
        allow_executor_spawns: bool = False,
    ) -> None:
        self._sim = sim
        self._catalog = catalog
        self._cost_model = cost_model
        self._rng = rng
        self._factory = executor_factory
        self._cold_start = cold_start_latency
        self._warm_start = warm_start_latency
        self._allow_executor_spawns = allow_executor_spawns
        self._regions: Dict[str, _RegionState] = {
            name: _RegionState(concurrency_limit_per_region) for name in catalog.names
        }
        self._counter = itertools.count()
        self._handles: Dict[str, ExecutorHandle] = {}
        self._spawn_count = 0
        self._rejected_spawns = 0
        self._known_executor_ids: set = set()

    @property
    def spawn_count(self) -> int:
        return self._spawn_count

    @property
    def rejected_spawns(self) -> int:
        return self._rejected_spawns

    @property
    def handles(self) -> List[ExecutorHandle]:
        return list(self._handles.values())

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def set_executor_factory(self, factory: Callable[..., Any]) -> None:
        self._factory = factory

    def set_concurrency_limit(self, region: str, limit: int) -> None:
        self._region_state(region).concurrency_limit = limit

    def running_executors(self, region: Optional[str] = None) -> int:
        if region is not None:
            return self._region_state(region).running
        return sum(state.running for state in self._regions.values())

    def spawn(self, request: SpawnRequest) -> ExecutorHandle:
        """Spawn one executor.  Returns the handle immediately; the executor
        itself starts running after the (cold or warm) start latency, or once
        a concurrency slot frees up."""
        if self._factory is None:
            raise CloudError("the serverless cloud has no executor factory configured")
        if request.region not in self._regions:
            raise CloudError(f"unknown region {request.region!r}")
        if request.spawner in self._known_executor_ids and not self._allow_executor_spawns:
            # Accountability: executors cannot spawn further executors.
            self._rejected_spawns += 1
            raise CloudError(
                f"executor {request.spawner!r} attempted to spawn an executor; rejected"
            )
        executor_id = f"executor-{next(self._counter)}"
        self._known_executor_ids.add(executor_id)
        handle = ExecutorHandle(
            executor_id=executor_id,
            region=request.region,
            spawner=request.spawner,
            spawn_time=self._sim.now,
        )
        self._handles[executor_id] = handle
        self._spawn_count += 1
        state = self._region_state(request.region)

        def launch() -> None:
            if state.warm_sandboxes > 0:
                state.warm_sandboxes -= 1
                latency = self._warm_start
            else:
                latency = self._cold_start + self._rng.uniform(0.0, self._cold_start * 0.2)
            # Launches are never cancelled: fire-and-forget fast path.
            self._sim.schedule_fast(latency, self._start_executor, handle, request)

        if state.running < state.concurrency_limit:
            state.running += 1
            launch()
        else:
            state.queue.append(lambda: (self._occupy_and_launch(state, launch)))
        return handle

    def spawn_many(self, spawner: str, regions: List[str], payload: Any) -> List[ExecutorHandle]:
        """Spawn one executor per entry of ``regions`` for the same payload."""
        return [
            self.spawn(SpawnRequest(spawner=spawner, region=region, payload=payload))
            for region in regions
        ]

    def finish(self, executor_id: str) -> ExecutorHandle:
        """Report that an executor finished; frees its slot and bills the spawner."""
        handle = self._handles.get(executor_id)
        if handle is None:
            raise CloudError(f"unknown executor {executor_id!r}")
        if handle.finish_time is not None:
            return handle
        handle.finish_time = self._sim.now
        state = self._region_state(handle.region)
        state.running = max(0, state.running - 1)
        state.warm_sandboxes += 1
        handle.cost = self._cost_model.charge_invocation(handle.spawner, handle.duration)
        if state.queue:
            next_launch = state.queue.popleft()
            next_launch()
        return handle

    # ------------------------------------------------------------------ internals

    def _occupy_and_launch(self, state: _RegionState, launch: Callable[[], None]) -> None:
        state.running += 1
        launch()

    def _start_executor(self, handle: ExecutorHandle, request: SpawnRequest) -> None:
        handle.start_time = self._sim.now
        self._factory(handle.executor_id, request.region, request.spawner, request.payload)

    def _region_state(self, region: str) -> _RegionState:
        try:
            return self._regions[region]
        except KeyError:
            raise CloudError(f"unknown region {region!r}")
