"""Monetary cost model (Figure 8).

The paper reports cents per thousand transactions using "the precise costs
for spawning serverless executors at AWS Lambda and running machines on
OCI".  We use the published list prices:

* AWS Lambda: $0.20 per million requests plus $0.0000166667 per GB-second
  of execution (x86, us-west region family at the time of the paper).
* OCI ``VM.Standard.E3.Flex``: $0.025 per OCPU-hour plus $0.0015 per
  GB-hour of memory.

The comparison in Figure 8 charges the serverless-edge deployment for the
shim VMs *and* the Lambda invocations, and charges the edge-only PBFT
deployment for its (longer-running or larger) VMs only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class LambdaPricing:
    """AWS Lambda list prices."""

    price_per_request: float = 0.20 / 1_000_000
    price_per_gb_second: float = 0.0000166667
    memory_gb: float = 1.0

    def invocation_cost(self, duration_seconds: float) -> float:
        """Dollar cost of one invocation of the given duration."""
        billed_duration = max(duration_seconds, 0.001)
        return self.price_per_request + billed_duration * self.memory_gb * self.price_per_gb_second


@dataclass(frozen=True)
class VmPricing:
    """OCI VM.Standard.E3.Flex list prices."""

    price_per_ocpu_hour: float = 0.025
    price_per_gb_hour: float = 0.0015
    memory_gb_per_core: float = 1.0

    def vm_cost(self, cores: int, memory_gb: float, duration_seconds: float) -> float:
        """Dollar cost of running one VM for ``duration_seconds``."""
        hours = duration_seconds / 3600.0
        return cores * self.price_per_ocpu_hour * hours + memory_gb * self.price_per_gb_hour * hours


@dataclass
class BillingReport:
    """Accumulated charges for one experiment run."""

    lambda_invocations: int = 0
    lambda_gb_seconds: float = 0.0
    lambda_cost: float = 0.0
    vm_cost: float = 0.0
    vm_core_hours: float = 0.0
    per_spawner_cost: Dict[str, float] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.lambda_cost + self.vm_cost

    def cents_per_kilo_txn(self, committed_transactions: int) -> float:
        """The paper's Figure 8 metric: cents per 1000 committed transactions."""
        if committed_transactions <= 0:
            return 0.0
        return (self.total_cost * 100.0) / (committed_transactions / 1000.0)


class CostModel:
    """Combines Lambda and VM pricing and accumulates a :class:`BillingReport`."""

    def __init__(
        self,
        lambda_pricing: LambdaPricing = LambdaPricing(),
        vm_pricing: VmPricing = VmPricing(),
    ) -> None:
        self.lambda_pricing = lambda_pricing
        self.vm_pricing = vm_pricing
        self._report = BillingReport()

    @property
    def report(self) -> BillingReport:
        return self._report

    def charge_invocation(self, spawner: str, duration_seconds: float) -> float:
        """Charge one Lambda invocation to the shim node that spawned it."""
        cost = self.lambda_pricing.invocation_cost(duration_seconds)
        self._report.lambda_invocations += 1
        self._report.lambda_gb_seconds += max(duration_seconds, 0.001) * self.lambda_pricing.memory_gb
        self._report.lambda_cost += cost
        self._report.per_spawner_cost[spawner] = self._report.per_spawner_cost.get(spawner, 0.0) + cost
        return cost

    def charge_vm_fleet(self, machines: int, cores: int, memory_gb: float, duration_seconds: float) -> float:
        """Charge a fleet of identical VMs for the duration of the run."""
        cost = machines * self.vm_pricing.vm_cost(cores, memory_gb, duration_seconds)
        self._report.vm_cost += cost
        self._report.vm_core_hours += machines * cores * duration_seconds / 3600.0
        return cost

    def reset(self) -> None:
        self._report = BillingReport()
