"""Serverless cloud substrate.

The paper spawns AWS Lambda executors in up to 11 regions and deploys the
shim/verifier/clients on Oracle Cloud VMs.  This package simulates that
environment: a geographic latency model over the same 11 regions, a
Lambda-like function service with cold/warm starts and concurrency limits,
and a billing model using the published AWS Lambda and OCI prices
(Figure 8's cents-per-kilo-transaction metric).
"""

from repro.cloud.regions import GeoLatencyModel, Region, RegionCatalog, DEFAULT_REGIONS
from repro.cloud.lambda_cloud import ExecutorHandle, ServerlessCloud, SpawnRequest
from repro.cloud.billing import BillingReport, CostModel, LambdaPricing, VmPricing

__all__ = [
    "BillingReport",
    "CostModel",
    "DEFAULT_REGIONS",
    "ExecutorHandle",
    "GeoLatencyModel",
    "LambdaPricing",
    "Region",
    "RegionCatalog",
    "ServerlessCloud",
    "SpawnRequest",
    "VmPricing",
]
