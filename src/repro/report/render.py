"""Render a result store into ``EXPERIMENTS.md``.

One section per sweep in the store; each row is one aggregated series
point — *all* replicate seeds of one configuration — showing mean ± std
error bars for scalar metrics, the exactly-pooled latency mean, and the
across-seed spread (never an average — see :mod:`repro.report.aggregate`)
for latency percentiles.

Rendering is a pure function of the store contents: groups are sorted,
floats are formatted with fixed precision, and nothing host- or
time-dependent enters the output, so rendering the same store twice
produces byte-identical documents (locked down by the report tests and
relied on by CI, which diffs re-renders).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.report.aggregate import (
    DEFAULT_SCALAR_METRICS,
    OBS_SCALAR_METRICS,
    RECOVERY_SCALAR_METRICS,
    LatencyStats,
    MetricStats,
    SeriesPoint,
    load_store_points,
)
from repro.report.tables import format_value, markdown_rows

#: Fixed cell formats: wide enough for throughput, precise enough for
#: sub-millisecond latency spreads.
SCALAR_FORMAT = "{:,.1f}"
LATENCY_FORMAT = "{:.4f}"

#: Recovery-metric cell formats: the time-based watchdog metrics need
#: millisecond precision; the counters stay in the scalar format.
RECOVERY_FORMATS = {
    "unavailability_s": "{:.3f}",
    "recovery_ttr_s": "{:.3f}",
}

#: Phase means are a few milliseconds of virtual time; render them all at
#: millisecond-grade precision.
OBS_FORMAT = "{:.4f}"


def format_error_bar(stats: MetricStats, float_format: str = SCALAR_FORMAT) -> str:
    """``mean ± std`` for replicated points, the bare value for single runs."""
    mean = float_format.format(stats.mean)
    if stats.n == 1:
        return mean
    return f"{mean} ± {float_format.format(stats.std)}"


def format_latency_mean(latency: LatencyStats) -> str:
    mean = LATENCY_FORMAT.format(latency.mean)
    if latency.seeds == 1:
        return mean
    return f"{mean} ± {LATENCY_FORMAT.format(latency.mean_std)}"


def format_spread(low: float, high: float, seeds: int) -> str:
    """The across-seed envelope of a percentile: ``low–high``, not a mean."""
    if seeds == 1 or LATENCY_FORMAT.format(low) == LATENCY_FORMAT.format(high):
        return LATENCY_FORMAT.format(low)
    return f"{LATENCY_FORMAT.format(low)}–{LATENCY_FORMAT.format(high)}"


def _label_columns(points: Sequence[SeriesPoint]) -> List[str]:
    columns: List[str] = []
    for point in points:
        for key, _value in point.labels:
            if key not in columns:
                columns.append(key)
    return columns


def render_sweep_section(name: str, points: Sequence[SeriesPoint]) -> str:
    """One markdown section: heading, provenance line, aggregated table."""
    label_columns = _label_columns(points)
    show_system = "system" not in label_columns and len(
        {point.system for point in points}
    ) > 1
    show_scenario = "scenario" not in label_columns and len(
        {point.scenario for point in points}
    ) > 1
    columns = list(label_columns)
    if show_system:
        columns.append("system")
    if show_scenario:
        columns.append("scenario")
    metric_columns = [column for column, _field in DEFAULT_SCALAR_METRICS]
    # Recovery columns appear only when some point in the section carries
    # the watchdog metrics — fault-free sweeps render exactly as before.
    recovery_columns = [
        column
        for column, _field in RECOVERY_SCALAR_METRICS
        if any(column in point.metrics for point in points)
    ]
    # Phase-breakdown columns appear only when some point was traced (the
    # flight recorder's obs payload) — untraced stores render as before.
    obs_columns = [
        column
        for column, _field in OBS_SCALAR_METRICS
        if any(column in point.metrics for point in points)
    ]
    columns += (
        ["seeds"]
        + metric_columns
        + recovery_columns
        + obs_columns
        + ["latency_mean_s", "latency_p50_s", "latency_p95_s", "latency_p99_s"]
    )

    rows: List[List[str]] = []
    for point in points:
        row = [format_value(point.label(key, "")) for key in label_columns]
        if show_system:
            row.append(point.system)
        if show_scenario:
            row.append(point.scenario)
        row.append(str(point.replicates))
        for column in metric_columns:
            row.append(format_error_bar(point.metrics[column]))
        for column in recovery_columns:
            if column in point.metrics:
                row.append(
                    format_error_bar(
                        point.metrics[column],
                        RECOVERY_FORMATS.get(column, SCALAR_FORMAT),
                    )
                )
            else:
                row.append("")
        for column in obs_columns:
            if column in point.metrics:
                row.append(format_error_bar(point.metrics[column], OBS_FORMAT))
            else:
                row.append("")
        row.append(format_latency_mean(point.latency))
        for spread in point.latency.spreads:
            row.append(format_spread(spread.low, spread.high, point.latency.seeds))
        rows.append(row)

    seeds = {point.replicates for point in points}
    seed_note = (
        f"{min(seeds)}–{max(seeds)}" if len(seeds) > 1 else f"{next(iter(seeds))}"
    )
    return "\n".join(
        [
            f"## {name}",
            "",
            f"{len(points)} points × {seed_note} seed(s); scalar cells are "
            f"mean ± std across seeds, the latency mean is pooled over all "
            f"samples, and percentile cells are the across-seed min–max "
            f"spread (percentiles are never averaged).",
            "",
            markdown_rows(columns, rows),
        ]
    )


def render_markdown(
    store,
    sweeps: Optional[Sequence[str]] = None,
    title: str = "EXPERIMENTS",
) -> str:
    """The full ``EXPERIMENTS.md`` document for one result store.

    Purely a read: every row comes from records already in the store, so
    rendering can never trigger a simulation.
    """
    grouped: Dict[str, List[SeriesPoint]] = load_store_points(store, sweeps=sweeps)
    total_points = sum(len(points) for points in grouped.values())
    total_runs = sum(
        point.replicates for points in grouped.values() for point in points
    )
    lines = [
        f"# {title}",
        "",
        "Rendered from a content-addressed result store by "
        "`python -m repro.report` — no simulations were run to produce "
        "this document.",
        "",
        f"{len(grouped)} sweep(s), {total_points} aggregated point(s), "
        f"{total_runs} stored run(s).",
    ]
    for name, points in grouped.items():
        lines += ["", render_sweep_section(name, points)]
    return "\n".join(lines) + "\n"
