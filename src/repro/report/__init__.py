"""Sweep-results reporting: honest error bars from replicated runs.

The paper's figures are means over repeated runs; this package turns a
content-addressed result store (written by ``python -m repro.sweep run
... --replicates N`` or :func:`repro.api.run_replicates`) into
``EXPERIMENTS.md`` tables and error-bar plots — without re-simulating:

* :mod:`repro.report.aggregate` — group store records into replicate
  families; mean ± std for scalars, exactly-pooled latency means, and
  across-seed percentile *spreads* (percentiles are never averaged).
* :mod:`repro.report.render` — byte-stable ``EXPERIMENTS.md`` rendering.
* :mod:`repro.report.tables` — the shared markdown-table primitive (also
  used by the analytical-model presets in :mod:`repro.bench.experiments`).
* :mod:`repro.report.plots` — matplotlib error-bar figures, optional.
* :mod:`repro.report.cli` — ``python -m repro.report``.
"""

from repro.report.aggregate import (
    DEFAULT_SCALAR_METRICS,
    LatencyStats,
    MetricStats,
    PercentileSpread,
    SeriesPoint,
    aggregate_records,
    latency_stats,
    load_store_points,
    metric_stats,
    pooled_mean,
    pooled_percentile,
)
from repro.report.render import (
    format_error_bar,
    format_spread,
    render_markdown,
    render_sweep_section,
)
from repro.report.tables import markdown_table

__all__ = [
    "DEFAULT_SCALAR_METRICS",
    "LatencyStats",
    "MetricStats",
    "PercentileSpread",
    "SeriesPoint",
    "aggregate_records",
    "format_error_bar",
    "format_spread",
    "latency_stats",
    "load_store_points",
    "markdown_table",
    "metric_stats",
    "pooled_mean",
    "pooled_percentile",
    "render_markdown",
    "render_sweep_section",
]
