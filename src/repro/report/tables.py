"""Markdown table rendering — the report layer's output primitive.

The bench harness keeps its aligned-text :func:`repro.bench.harness.
format_table` for terminal output; everything that lands in
``EXPERIMENTS.md`` goes through this module instead, so the analytical
model presets (``repro.bench.experiments``) and the store-backed replicate
aggregates share one table dialect.  Rendering is pure and deterministic:
the same inputs always produce the same bytes.
"""

from __future__ import annotations

from typing import List, Sequence


def format_value(value: object, float_format: str = "{:,.3f}") -> str:
    """One table cell: floats through ``float_format``, the rest via str."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def markdown_rows(columns: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A GitHub-markdown table from pre-rendered cells."""
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def markdown_table(table, float_format: str = "{:,.3f}") -> str:
    """Render an :class:`~repro.bench.harness.ExperimentTable` as markdown."""
    columns = list(table.columns)
    rendered: List[List[str]] = [
        [format_value(row.get(column, ""), float_format) for column in columns]
        for row in table.rows
    ]
    return markdown_rows(columns, rendered)
