"""Error-bar plots for aggregated sweep results (matplotlib-gated).

Plot rendering is strictly optional: matplotlib is not a dependency of the
reproduction, so everything here degrades to a no-op with an explanatory
message when it is missing.  When available, each sweep in the store
renders one throughput and one latency figure — x is the first numeric
label axis, one line per remaining-label combination, and the y error bars
are the across-seed standard deviation (throughput) or the per-seed
percentile spread (latency p99), matching the table semantics of
:mod:`repro.report.render`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.report.aggregate import SeriesPoint


def matplotlib_available() -> bool:
    try:  # pragma: no cover - environment-dependent
        import matplotlib  # noqa: F401

        return True
    except Exception:
        return False


def _numeric_axis(points: Sequence[SeriesPoint]) -> Optional[str]:
    """The first label key whose values are all numeric (the x axis)."""
    for key, _value in points[0].labels:
        values = [point.label(key) for point in points]
        if all(isinstance(value, (int, float)) and not isinstance(value, bool)
               for value in values):
            return key
    return None


def _series_of(points: Sequence[SeriesPoint], x_axis: str):
    """Split points into plot lines keyed by every non-x label + system."""
    series: Dict[str, List[SeriesPoint]] = {}
    for point in points:
        parts = [
            f"{key}={value}" for key, value in point.labels if key != x_axis
        ]
        if point.system:
            parts.append(point.system)
        series.setdefault(" ".join(parts) or point.sweep, []).append(point)
    return sorted(series.items())


def render_plots(
    grouped: Dict[str, List[SeriesPoint]], output_dir: str
) -> List[str]:
    """Write one throughput and one latency error-bar figure per sweep.

    Returns the written paths.  Raises :class:`RuntimeError` when
    matplotlib is unavailable — callers should check
    :func:`matplotlib_available` first and skip gracefully.
    """
    if not matplotlib_available():
        raise RuntimeError(
            "matplotlib is not installed; EXPERIMENTS.md tables were still "
            "rendered — install matplotlib to get error-bar figures"
        )
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(output_dir, exist_ok=True)
    written: List[str] = []
    for sweep, points in sorted(grouped.items()):
        x_axis = _numeric_axis(points)
        if x_axis is None:
            # No silent coverage gaps: the user asked for plots, so a sweep
            # that cannot be plotted must say so rather than just not appear.
            print(
                f"[report] sweep {sweep!r} has no numeric label axis — "
                f"no figure written (tables still cover it)"
            )
            continue
        for kind, ylabel in (("throughput", "throughput (txn/s)"),
                             ("latency", "latency (s)")):
            figure, axes = plt.subplots(figsize=(6.0, 4.0))
            for label, line_points in _series_of(points, x_axis):
                line_points = sorted(line_points, key=lambda p: p.label(x_axis))
                xs = [point.label(x_axis) for point in line_points]
                if kind == "throughput":
                    stats = [point.metrics["throughput_txn_s"] for point in line_points]
                    ys = [stat.mean for stat in stats]
                    errors = [stat.std for stat in stats]
                else:
                    ys = [point.latency.mean for point in line_points]
                    p99 = [point.latency.spreads[-1] for point in line_points]
                    errors = [
                        [max(0.0, y - spread.low) for y, spread in zip(ys, p99)],
                        [max(0.0, spread.high - y) for y, spread in zip(ys, p99)],
                    ]
                axes.errorbar(xs, ys, yerr=errors, marker="o", capsize=3, label=label)
            axes.set_xlabel(x_axis)
            axes.set_ylabel(ylabel)
            axes.set_title(f"{sweep} — {kind}")
            axes.legend(fontsize="small")
            figure.tight_layout()
            path = os.path.join(output_dir, f"{sweep}-{kind}.png")
            figure.savefig(path, dpi=120)
            plt.close(figure)
            written.append(path)
    return written
