import sys

from repro.report.cli import main

sys.exit(main())
