"""Command-line entry point: ``python -m repro.report``.

Loads a content-addressed result store, aggregates its records across
replicate seeds, and renders ``EXPERIMENTS.md`` tables (and, with
matplotlib installed, error-bar plots) — without running a single
simulation.  ``python -m repro.sweep report`` is a thin alias.

Typical flow::

    python -m repro.sweep run smoke --replicates 3 --store results.jsonl
    python -m repro.report --store results.jsonl --output EXPERIMENTS.md

``--model-presets`` appends the analytical-model tables for the paper's
fig5–fig8/ablation presets (evaluated instantly from the closed-form
model, so the no-simulation guarantee holds).  ``--fail-empty`` makes an
empty render a hard error — CI uses it to prove the store fed the tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.report.render import render_markdown
from repro.store.url import open_store


def _model_preset_sections(names: Optional[List[str]]) -> str:
    # Imported lazily: the analytical presets live in the bench layer, which
    # itself renders its tables through repro.report.tables.
    from repro.bench.experiments import markdown_report

    return "\n".join(
        [
            "# Analytical model (paper scale)",
            "",
            "Closed-form sweeps of the calibrated performance model — "
            "evaluated directly, no simulation involved.",
            "",
            markdown_report(names),
        ]
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--store",
        required=True,
        help="result-store URL to aggregate: a JSONL path, sqlite://path.db, "
        "or shard://dir (see python -m repro.sweep run)",
    )
    parser.add_argument(
        "--output",
        default="-",
        help="markdown output path ('-' for stdout, the default)",
    )
    parser.add_argument(
        "--sweep",
        action="append",
        metavar="NAME",
        help="only render the named sweep(s) (repeatable; default: all in store)",
    )
    parser.add_argument(
        "--plots",
        metavar="DIR",
        default="",
        help="also write error-bar PNGs to DIR (needs matplotlib; skipped "
        "with a notice otherwise)",
    )
    parser.add_argument(
        "--model-presets",
        action="store_true",
        help="append the analytical-model tables for the fig5–fig8/ablation presets",
    )
    parser.add_argument(
        "--fail-empty",
        action="store_true",
        help="exit non-zero if no store records produced a table row (CI check)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        store = open_store(args.store)
        document = render_markdown(store, sweeps=args.sweep)
        # --fail-empty judges the *measured* document: the always-populated
        # model-preset tables must not be able to mask an empty store render.
        if args.fail_empty and len(store) == 0:
            print(
                f"error: --fail-empty but store {args.store!r} holds no "
                f"renderable records",
                file=sys.stderr,
            )
            return 4
        if args.fail_empty and "| " not in document:
            print(
                "error: --fail-empty but no table rows were rendered "
                "(does the --sweep filter match anything in the store?)",
                file=sys.stderr,
            )
            return 4
        if args.model_presets:
            document += "\n" + _model_preset_sections(None)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output == "-":
        print(document, end="")
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"[report] wrote {args.output} ({len(store)} store records)")

    if args.plots:
        from repro.report.plots import matplotlib_available, render_plots
        from repro.report.aggregate import load_store_points

        if not matplotlib_available():
            print(
                "[report] matplotlib not installed — skipping plots "
                "(tables were rendered)",
            )
        else:
            written = render_plots(
                load_store_points(store, sweeps=args.sweep), args.plots
            )
            for path in written:
                print(f"[report] wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
