"""Replicate-aware aggregation of result-store records.

The statistics layer under ``python -m repro.report``: load a
:class:`~repro.sweep.store.ResultStore`, group its records into *series
points* — one per (sweep, system, scenario, labels-minus-``replicate``)
combination — and summarise each group across its replicate seeds.

Aggregation is deliberately conservative about what it claims:

* Plain scalar metrics (throughput, committed/aborted counts) report the
  across-seed mean and *sample* standard deviation — the error bar the
  paper's repeated-run figures carry.
* The latency **mean** is pooled exactly: per-seed means are combined
  weighted by their sample counts, which equals the mean over the union of
  all raw samples.
* Latency **percentiles are never averaged.**  The mean of per-seed p99s is
  not the p99 of the pooled distribution (it systematically understates
  tail behaviour whenever seeds disagree), and the store only holds per-seed
  summaries, so an exact pooled p99 is not computable.  Instead each
  percentile reports its across-seed *spread* — the min..max envelope of
  the per-seed values — which is honest about what the data supports.
  :func:`pooled_percentile` exists for callers that do hold raw samples,
  and the unit tests use it to document why averaging is wrong.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: The label that groups a replicate family back together (and therefore
#: never appears as a table axis).
REPLICATE_LABEL = "replicate"

#: Scalar result-dict metrics aggregated for every series point:
#: ``(column name, result-dict key)``.
DEFAULT_SCALAR_METRICS: Tuple[Tuple[str, str], ...] = (
    ("throughput_txn_s", "throughput_txn_per_sec"),
    ("committed", "committed_txns"),
    ("aborted", "aborted_txns"),
)

#: Recovery metrics recorded by the fault-timeline watchdog, aggregated
#: only when *every* replicate of a series point carries them (fields are
#: dotted paths into the result dict, e.g. ``extra.unavailability_seconds``).
#: Fault-free stores have no ``extra`` recovery keys, so these columns never
#: appear for them and their renders stay byte-identical.
RECOVERY_SCALAR_METRICS: Tuple[Tuple[str, str], ...] = (
    ("unavailability_s", "extra.unavailability_seconds"),
    ("recovery_ttr_s", "extra.time_to_recovery_seconds"),
    ("view_changes", "view_changes"),
    ("checkpoints", "extra.checkpoints_sent"),
)

#: Commit-path phase breakdown, present only for traced runs (the flight
#: recorder's ``obs.phases`` payload).  Same presence discipline as the
#: recovery columns: untraced stores never grow these columns, so their
#: renders stay byte-identical.
OBS_SCALAR_METRICS: Tuple[Tuple[str, str], ...] = (
    ("consensus_mean_s", "obs.phases.consensus.mean"),
    ("spawn_mean_s", "obs.phases.spawn.mean"),
    ("execute_mean_s", "obs.phases.execute.mean"),
    ("verify_mean_s", "obs.phases.verify.mean"),
    ("commit_mean_s", "obs.phases.commit.mean"),
)


def resolve_result_field(result: Mapping[str, object], field: str):
    """Walk a dotted ``field`` path into a result dict; None when absent.

    ``"extra.unavailability_seconds"`` resolves ``result["extra"][
    "unavailability_seconds"]``; a missing segment (or a non-mapping in the
    middle of the path) yields None rather than raising, so optional
    metrics can be probed record by record.
    """
    value: object = result
    for part in field.split("."):
        if not isinstance(value, Mapping) or part not in value:
            return None
        value = value[part]
    return value

#: Percentile fields of a latency summary, in rendering order.
PERCENTILE_FIELDS: Tuple[str, ...] = ("p50", "p95", "p99")


# ------------------------------------------------------------------ statistics


@dataclass(frozen=True)
class MetricStats:
    """Across-seed summary of one scalar metric."""

    n: int
    mean: float
    std: float  # sample std (ddof=1); 0.0 for a single seed
    minimum: float
    maximum: float


def metric_stats(values: Sequence[float]) -> MetricStats:
    """Mean ± sample standard deviation (and range) of per-seed values."""
    if not values:
        raise ValueError("metric_stats needs at least one value")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((value - mean) ** 2 for value in values) / (count - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return MetricStats(
        n=count, mean=mean, std=std, minimum=min(values), maximum=max(values)
    )


@dataclass(frozen=True)
class PercentileSpread:
    """The across-seed envelope of one latency percentile.

    ``low``/``high`` are the smallest and largest per-seed values — never an
    average, see the module docstring.
    """

    name: str
    low: float
    high: float


@dataclass(frozen=True)
class LatencyStats:
    """Across-seed summary of the latency distributions of one series point."""

    seeds: int
    samples: int  # pooled sample count over all seeds
    mean: float  # exact pooled mean (count-weighted)
    mean_std: float  # sample std of the per-seed means
    spreads: Tuple[PercentileSpread, ...]
    minimum: float  # exact pooled minimum
    maximum: float  # exact pooled maximum


def pooled_mean(counts: Sequence[int], means: Sequence[float]) -> float:
    """The mean of the union of samples, from per-seed (count, mean) pairs."""
    total = sum(counts)
    if total == 0:
        return 0.0
    return sum(count * mean for count, mean in zip(counts, means)) / total


def pooled_percentile(
    samples_by_seed: Sequence[Sequence[float]], fraction: float
) -> float:
    """Percentile of the union of raw per-seed samples.

    This — not the mean of per-seed percentiles — is the statistic the
    paper's latency figures need; it is only computable when raw samples
    are available.  The interpolation matches
    :func:`repro.sim.stats._percentile`, so pooling one seed's samples
    reproduces that seed's stored summary exactly.
    """
    from repro.sim.stats import _percentile

    pooled = sorted(value for seed in samples_by_seed for value in seed)
    return _percentile(pooled, fraction)


def latency_stats(summaries: Sequence[Mapping[str, float]]) -> LatencyStats:
    """Summarise per-seed latency-summary dicts across seeds."""
    if not summaries:
        raise ValueError("latency_stats needs at least one summary")
    counts = [int(summary["count"]) for summary in summaries]
    means = [float(summary["mean"]) for summary in summaries]
    spreads = tuple(
        PercentileSpread(
            name=field,
            low=min(float(summary[field]) for summary in summaries),
            high=max(float(summary[field]) for summary in summaries),
        )
        for field in PERCENTILE_FIELDS
    )
    return LatencyStats(
        seeds=len(summaries),
        samples=sum(counts),
        mean=pooled_mean(counts, means),
        mean_std=metric_stats(means).std,
        spreads=spreads,
        minimum=min(float(summary["minimum"]) for summary in summaries),
        maximum=max(float(summary["maximum"]) for summary in summaries),
    )


# ------------------------------------------------------------------ grouping


@dataclass(frozen=True)
class SeriesPoint:
    """One aggregated point of a sweep: all replicates of one configuration."""

    sweep: str
    system: str
    scenario: str
    labels: Tuple[Tuple[str, object], ...]  # replicate label excluded
    replicates: int
    metrics: Mapping[str, MetricStats]
    latency: LatencyStats
    digests: Tuple[str, ...]  # one per replicate, replicate order

    def label(self, key: str, default=None):
        for name, value in self.labels:
            if name == key:
                return value
        return default


def _config_fingerprint(point: Mapping[str, object]) -> str:
    """What identifies a replicate *family*: the resolved spec minus seeds.

    Replicates of one configuration differ only in their materialised
    seeds (and the ``replicate`` label); any other resolved difference —
    a ``--set`` override, a different batch size, an ad-hoc facade run
    with other knobs — means a different experiment that must never be
    pooled into the same mean ± std row.
    """
    slim = {key: value for key, value in dict(point).items() if key != "labels"}
    for layer in ("config", "workload"):
        trimmed = dict(slim.get(layer, {}))  # type: ignore[arg-type]
        trimmed.pop("seed", None)
        slim[layer] = trimmed
    return json.dumps(slim, sort_keys=True, default=repr)


def _series_key(record: Mapping[str, object]) -> Tuple:
    point = record.get("point", {})
    labels = {
        key: value
        for key, value in dict(record.get("labels", {})).items()
        if key != REPLICATE_LABEL
    }
    return (
        str(record.get("sweep", "")),
        str(point.get("system", "")),
        str(point.get("scenario", "")),
        json.dumps(labels, sort_keys=True, default=repr),
        _config_fingerprint(point),
    )


def _replicate_order(record: Mapping[str, object]) -> Tuple:
    index = dict(record.get("labels", {})).get(REPLICATE_LABEL)
    # Single-run groups have no replicate label; sort them stably by digest.
    return (0, int(index)) if isinstance(index, int) else (1, str(record.get("digest")))


def _natural_value(value: object) -> Tuple:
    """A mixed-type-safe sort key: numbers numerically, the rest as strings."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def _group_order(key: Tuple) -> Tuple:
    sweep, system, scenario, labels_json, fingerprint = key
    labels = json.loads(labels_json)
    label_key = tuple(
        (name, _natural_value(labels[name])) for name in sorted(labels)
    )
    return (sweep, label_key, system, scenario, fingerprint)


def aggregate_records(
    records: Iterable[Mapping[str, object]],
    scalar_metrics: Sequence[Tuple[str, str]] = DEFAULT_SCALAR_METRICS,
) -> List[SeriesPoint]:
    """Group store records into replicate families and summarise each.

    Records are grouped by (sweep, system, scenario, labels minus the
    ``replicate`` label, resolved spec minus seeds) — the last component is
    what stops two *differently configured* runs that happen to share
    labels (two ad-hoc facade runs, a sweep re-run with other ``--set``
    overrides) from being pooled into one bogus replicate family.  Each
    group aggregates across its members — the replicate seeds.  The output order is deterministic and *content*-based
    (sweep name, then naturally-sorted label values): parallel sweeps
    append to the store in completion order, so sorting by content — not
    file order — is what makes renders of the same results byte-identical
    no matter how the store was produced.
    """
    groups: Dict[Tuple, List[Mapping[str, object]]] = {}
    for record in records:
        groups.setdefault(_series_key(record), []).append(record)

    points: List[SeriesPoint] = []
    for key in sorted(groups, key=_group_order):
        members = sorted(groups[key], key=_replicate_order)
        sweep, system, scenario, labels_json, _fingerprint = key
        results = [member["result"] for member in members]
        metrics = {
            column: metric_stats([float(result[field]) for result in results])
            for column, field in scalar_metrics
        }
        # Recovery metrics ride along only for fault-timeline runs: the
        # watchdog's unavailability counter marks such records, and a group
        # only gets a column when every replicate can supply a value.
        if all(
            resolve_result_field(result, "extra.unavailability_seconds") is not None
            for result in results
        ):
            for column, field in RECOVERY_SCALAR_METRICS:
                values = [resolve_result_field(result, field) for result in results]
                if column not in metrics and all(
                    value is not None for value in values
                ):
                    metrics[column] = metric_stats(
                        [float(value) for value in values]  # type: ignore[arg-type]
                    )
        # Phase-breakdown columns ride along only for traced runs, and only
        # when every replicate of the group carries the phase (a group mixing
        # traced and untraced replicates stays phase-free).
        if all(
            resolve_result_field(result, "obs.phases") is not None
            for result in results
        ):
            for column, field in OBS_SCALAR_METRICS:
                values = [resolve_result_field(result, field) for result in results]
                if column not in metrics and all(
                    value is not None for value in values
                ):
                    metrics[column] = metric_stats(
                        [float(value) for value in values]  # type: ignore[arg-type]
                    )
        points.append(
            SeriesPoint(
                sweep=sweep,
                system=system,
                scenario=scenario,
                labels=tuple(json.loads(labels_json).items()),
                replicates=len(members),
                metrics=metrics,
                latency=latency_stats([result["latency"] for result in results]),
                digests=tuple(str(member["digest"]) for member in members),
            )
        )
    return points


def load_store_points(
    store,
    sweeps: Optional[Sequence[str]] = None,
    scalar_metrics: Sequence[Tuple[str, str]] = DEFAULT_SCALAR_METRICS,
) -> Dict[str, List[SeriesPoint]]:
    """Aggregate a result store by sweep name.

    ``store`` is any :class:`repro.store.ResultBackend` (JSONL, sqlite, or
    sharded — the sweep-name filter is pushed down to the backend, which
    an indexed backend answers without scanning every record), or any
    duck-typed object exposing ``digests()``/``get()``.  ``sweeps``
    optionally filters to the named sweeps.  Purely a read of the store —
    nothing here can trigger a simulation, and the aggregation is a pure
    function of the record set, so every backend holding the same records
    renders byte-identical output.
    """
    wanted = sorted(set(sweeps)) if sweeps else None
    if hasattr(store, "iter_records"):
        records = list(store.iter_records(sweeps=wanted))
    else:
        wanted_set = set(wanted) if wanted else None
        records = [
            record
            for record in (store.get(digest) for digest in store.digests())
            if wanted_set is None or record.get("sweep") in wanted_set
        ]
    grouped: Dict[str, List[SeriesPoint]] = {}
    for point in aggregate_records(records, scalar_metrics):
        grouped.setdefault(point.sweep, []).append(point)
    return dict(sorted(grouped.items()))
