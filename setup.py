"""Setuptools shim so ``pip install -e .`` works without the wheel package.

The offline environment lacks ``wheel``, which PEP 517 editable installs
need; the legacy ``setup.py develop`` path used via
``pip install -e . --no-use-pep517 --no-build-isolation`` does not.

The simulator itself is stdlib-only; ``pip install -e .[dev]`` adds the
static-analysis toolchain (mypy — the in-tree linter ``repro.lint`` needs
nothing beyond the stdlib) and pytest for the tier-1 suite.

The compiled kernel (``repro._ckernel._impl``) is strictly OPTIONAL: the
extension is attempted, and any build failure — no compiler, exotic
platform — degrades to the authoritative pure-Python implementations with
a warning instead of breaking the install.  Build it explicitly with::

    python setup.py build_ext --inplace
"""

import sys

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """``build_ext`` that degrades to pure Python instead of failing.

    ``repro.kernel`` (the chooser) already handles the extension being
    absent at import time, so a failed build must never fail the install.
    """

    def run(self):
        try:
            build_ext.run(self)
        except Exception as exc:  # noqa: BLE001 - any build failure is non-fatal
            self._warn(exc)

    def build_extension(self, ext):
        try:
            build_ext.build_extension(self, ext)
        except Exception as exc:  # noqa: BLE001 - any build failure is non-fatal
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        sys.stderr.write(
            "WARNING: building the optional repro._ckernel._impl extension "
            "failed (%s: %s); falling back to the pure-Python kernel.\n"
            % (type(exc).__name__, exc)
        )


setup(
    name="repro-serverless-bft",
    version="0.9.0",
    description=(
        "Discrete-event reproduction of a serverless BFT/CFT consensus "
        "study: deterministic simulator, sweep harness, content-addressed "
        "result store, compiled kernel fast path, and static-analysis "
        "tooling."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    ext_modules=[
        Extension(
            "repro._ckernel._impl",
            sources=[
                "src/repro/_ckernel/_impl.c",
                "src/repro/_ckernel/sha256.c",
            ],
            depends=["src/repro/_ckernel/sha256.h"],
            optional=True,
        ),
    ],
    cmdclass={"build_ext": optional_build_ext},
    # Runtime is deliberately stdlib-only (see ROADMAP.md); extras cover
    # the development toolchain.  Version pins are deliberately loose so the
    # extra resolves against whatever the offline environment already has.
    extras_require={
        "dev": [
            "pytest",
            "mypy",
        ],
    },
)
