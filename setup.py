"""Setuptools shim so ``pip install -e .`` works without the wheel package.

The offline environment lacks ``wheel``, which PEP 517 editable installs
need; the legacy ``setup.py develop`` path used via
``pip install -e . --no-use-pep517 --no-build-isolation`` does not.

The simulator itself is stdlib-only; ``pip install -e .[dev]`` adds the
static-analysis toolchain (mypy — the in-tree linter ``repro.lint`` needs
nothing beyond the stdlib) and pytest for the tier-1 suite.
"""

from setuptools import find_packages, setup

setup(
    name="repro-serverless-bft",
    version="0.8.0",
    description=(
        "Discrete-event reproduction of a serverless BFT/CFT consensus "
        "study: deterministic simulator, sweep harness, content-addressed "
        "result store, and static-analysis tooling."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    # Runtime is deliberately stdlib-only (see ROADMAP.md); extras cover
    # the development toolchain.
    extras_require={
        "dev": [
            "pytest",
            "mypy>=1.8",
        ],
    },
)
