"""Setuptools shim so ``pip install -e .`` works without the wheel package.

The offline environment lacks ``wheel``, which PEP 517 editable installs
need; the legacy ``setup.py develop`` path used via
``pip install -e . --no-use-pep517 --no-build-isolation`` does not.
"""

from setuptools import setup

setup()
